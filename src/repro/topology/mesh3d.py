"""3D mesh topology (the naive stacked 3DB network, Fig. 3b).

The 3DB design groups the 36 tiles into a 3x3x4 stack: a 3x3 planar mesh on
each of four silicon layers, with vertical through-silicon-via channels
between vertically adjacent routers.  Each router gains two extra ports
("U" up towards the heat sink, "D" down) relative to a 2D router, which is
exactly the 7x7-crossbar baseline the paper compares against.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.topology.base import LinkKind, LinkSpec, Topology
from repro.topology.mesh2d import EAST, NORTH, OPPOSITE, SOUTH, WEST

UP, DOWN = "U", "D"

#: Physical length of a through-silicon via channel in millimetres.  Layer
#: thickness in a 90 nm F2B stack is tens of micrometres, so vertical hops
#: are electrically almost free compared to millimetre-scale planar wires.
TSV_LENGTH_MM = 0.05

_OPPOSITE_3D = dict(OPPOSITE)
_OPPOSITE_3D.update({UP: DOWN, DOWN: UP})


class Mesh3D(Topology):
    """A ``width`` x ``height`` x ``depth`` 3D mesh.

    Node ids are assigned layer-major: node
    ``z * width * height + y * width + x`` sits at ``(x, y, z)``.  Layer
    ``z = depth - 1`` is the top layer (closest to the heat sink), matching
    the paper's placement of processor cores (Fig. 10c).
    """

    def __init__(
        self,
        width: int,
        height: int,
        depth: int,
        pitch_mm: float,
        tsv_length_mm: float = TSV_LENGTH_MM,
    ) -> None:
        if min(width, height, depth) < 1:
            raise ValueError(
                f"mesh dimensions must be >= 1, got {width}x{height}x{depth}"
            )
        if pitch_mm <= 0:
            raise ValueError(f"pitch_mm must be positive, got {pitch_mm}")
        self.width = width
        self.height = height
        self.depth = depth
        self.pitch_mm = pitch_mm
        self.tsv_length_mm = tsv_length_mm
        links = self._build_links()
        super().__init__(width * height * depth, links)

    def _build_links(self) -> List[LinkSpec]:
        links: List[LinkSpec] = []

        def node(x: int, y: int, z: int) -> int:
            return z * self.width * self.height + y * self.width + x

        for z in range(self.depth):
            for y in range(self.height):
                for x in range(self.width):
                    src = node(x, y, z)
                    planar = [
                        (EAST, x + 1 < self.width, node(min(x + 1, self.width - 1), y, z)),
                        (WEST, x - 1 >= 0, node(max(x - 1, 0), y, z)),
                        (SOUTH, y + 1 < self.height, node(x, min(y + 1, self.height - 1), z)),
                        (NORTH, y - 1 >= 0, node(x, max(y - 1, 0), z)),
                    ]
                    for direction, valid, dst in planar:
                        if valid:
                            links.append(
                                LinkSpec(
                                    src=src,
                                    dst=dst,
                                    src_port=direction,
                                    dst_port=_OPPOSITE_3D[direction],
                                    kind=LinkKind.NORMAL,
                                    length_mm=self.pitch_mm,
                                    span=1,
                                )
                            )
                    if z + 1 < self.depth:
                        links.append(
                            LinkSpec(
                                src=src,
                                dst=node(x, y, z + 1),
                                src_port=UP,
                                dst_port=DOWN,
                                kind=LinkKind.VERTICAL,
                                length_mm=self.tsv_length_mm,
                                span=1,
                            )
                        )
                    if z - 1 >= 0:
                        links.append(
                            LinkSpec(
                                src=src,
                                dst=node(x, y, z - 1),
                                src_port=DOWN,
                                dst_port=UP,
                                kind=LinkKind.VERTICAL,
                                length_mm=self.tsv_length_mm,
                                span=1,
                            )
                        )
        return links

    def coordinates(self, node: int) -> Tuple[int, int, int]:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
        plane = self.width * self.height
        z, rest = divmod(node, plane)
        y, x = divmod(rest, self.width)
        return x, y, z

    def node_at(self, coords: Tuple[int, ...]) -> int:
        x, y, z = coords
        if not (
            0 <= x < self.width and 0 <= y < self.height and 0 <= z < self.depth
        ):
            raise ValueError(f"coordinates {coords} out of range")
        return z * self.width * self.height + y * self.width + x
