"""Chiplet-style mesh: a regular tile mesh plus centered IO/hub nodes.

Models the chiplet-integration floorplans from the ROADMAP's scenario
item (a compute mesh whose off-chip traffic funnels through a few
centrally placed IO chiplets): ``width x height`` mesh tiles keep their
ids and cardinal links, and ``hubs`` extra nodes are appended after
them, each wired to a small cross of central tiles.  Router radix is
heterogeneous by construction — a hub carries one port per attached
tile, a hub-attached tile grows a sixth ``IO`` port — which is exactly
what the coordinate-free table-routing substrate exists to handle.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.topology.base import LinkKind, LinkSpec, Topology
from repro.topology.mesh2d import Mesh2D

#: Port name on a tile towards its hub.
IO_PORT = "IO"


class ChipletMesh(Topology):
    """A ``width x height`` mesh with ``hubs`` centered IO nodes.

    Tile ids are row-major like :class:`~repro.topology.mesh2d.Mesh2D`;
    hub *k* gets id ``width * height + k``.  Each hub anchors at an
    evenly spaced position along the middle row and links bidirectionally
    to its anchor tile plus the anchor's west/north/south neighbours
    (skipping tiles another hub already claimed).  Hub wires are one
    pitch long — the hub die sits directly over its anchor region.
    """

    def __init__(
        self, width: int, height: int, pitch_mm: float, hubs: int = 2
    ) -> None:
        if width < 2 or height < 2:
            raise ValueError(
                f"chiplet mesh needs a >= 2x2 tile grid, got {width}x{height}"
            )
        if hubs < 1:
            raise ValueError(f"hubs must be >= 1, got {hubs}")
        if hubs > width:
            raise ValueError(f"at most one hub per column: {hubs} > {width}")
        self.width = width
        self.height = height
        self.pitch_mm = pitch_mm
        self.hubs = hubs
        num_tiles = width * height
        # The tile mesh contributes its links unchanged.
        links: List[LinkSpec] = list(Mesh2D(width, height, pitch_mm).links)
        self.hub_tiles: Dict[int, Tuple[int, ...]] = {}
        claimed: set = set()
        mid_y = height // 2
        for k in range(hubs):
            hub = num_tiles + k
            anchor_x = (k + 1) * width // (hubs + 1)
            anchor = mid_y * width + anchor_x
            candidates = [anchor]
            if anchor_x > 0:
                candidates.append(anchor - 1)  # west neighbour
            if mid_y > 0:
                candidates.append(anchor - width)  # north neighbour
            if mid_y + 1 < height:
                candidates.append(anchor + width)  # south neighbour
            attached = []
            for port_idx, tile in enumerate(
                t for t in candidates if t not in claimed
            ):
                claimed.add(tile)
                attached.append(tile)
                hub_port = f"H{port_idx}"
                links.append(self._hub_link(hub, tile, hub_port, IO_PORT))
                links.append(self._hub_link(tile, hub, IO_PORT, hub_port))
            if not attached:
                raise ValueError(
                    f"hub {k} found no free anchor tiles; reduce hubs"
                )
            self.hub_tiles[hub] = tuple(attached)
        super().__init__(num_tiles + hubs, links)

    def _hub_link(
        self, src: int, dst: int, src_port: str, dst_port: str
    ) -> LinkSpec:
        return LinkSpec(
            src=src,
            dst=dst,
            src_port=src_port,
            dst_port=dst_port,
            kind=LinkKind.NORMAL,
            length_mm=self.pitch_mm,
            span=1,
        )

    @property
    def num_tiles(self) -> int:
        return self.width * self.height

    def is_hub(self, node: int) -> bool:
        return node >= self.num_tiles

    def coordinates(self, node: int) -> Tuple[int, int]:
        """Grid coordinates of a *tile*; hub nodes sit off-grid."""
        if self.is_hub(node):
            raise ValueError(f"hub node {node} has no grid coordinates")
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
        return node % self.width, node // self.width

    def node_at(self, coords: Tuple[int, ...]) -> int:
        x, y = coords
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"coordinates {coords} out of range")
        return y * self.width + x
