"""Network topologies for the MIRA evaluation.

Three topologies appear in the paper (Sec. 4.1.1, Figs. 3, 7, 10):

* a 6x6 2D mesh used by the 2DB, 3DM and 3DM-E architectures,
* a 3x3x4 3D mesh used by the 3DB architecture, and
* a 6x6 express mesh (2D mesh plus multi-hop express channels, Fig. 7)
  used by 3DM-E.

The library additionally ships fabrics beyond the paper — a
bidirectional :class:`~repro.topology.ring.Ring`, a
:class:`~repro.topology.chiplet.ChipletMesh` with centered IO hubs, and
JSON-defined :class:`~repro.topology.irregular.IrregularTopology` graphs
— routed by the generic table substrate rather than coordinate rules.

All topologies expose the :class:`~repro.topology.base.Topology` interface:
a set of nodes with geometric coordinates and a set of directed links with
named ports, physical lengths and link kinds.
"""

from repro.topology.base import LinkKind, LinkSpec, Topology
from repro.topology.mesh2d import Mesh2D
from repro.topology.mesh3d import Mesh3D
from repro.topology.express_mesh import ExpressMesh
from repro.topology.torus import Torus2D
from repro.topology.ring import Ring
from repro.topology.chiplet import ChipletMesh
from repro.topology.irregular import IrregularTopology

__all__ = [
    "LinkKind",
    "LinkSpec",
    "Topology",
    "Mesh2D",
    "Mesh3D",
    "ExpressMesh",
    "Torus2D",
    "Ring",
    "ChipletMesh",
    "IrregularTopology",
]
