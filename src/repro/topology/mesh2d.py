"""2D mesh topology (the 2DB / 3DM logical network, Fig. 3a/3c)."""

from __future__ import annotations

from typing import List, Tuple

from repro.topology.base import LinkKind, LinkSpec, Topology

#: Cardinal port names: east, west, north, south.
EAST, WEST, NORTH, SOUTH = "E", "W", "N", "S"

#: Opposite cardinal direction, used to pair sender/receiver port names.
OPPOSITE = {EAST: WEST, WEST: EAST, NORTH: SOUTH, SOUTH: NORTH}


class Mesh2D(Topology):
    """A ``width`` x ``height`` 2D mesh of routers.

    Node ids are assigned in row-major order: node ``y * width + x`` sits at
    grid position ``(x, y)``.  ``pitch_mm`` is the physical centre-to-centre
    tile distance and therefore the inter-router link length; the paper uses
    3.16 mm for the 2DB layout and 1.58 mm for the quarter-footprint 3DM
    layout (Table 2 / Sec. 3.4.1).
    """

    def __init__(self, width: int, height: int, pitch_mm: float) -> None:
        if width < 1 or height < 1:
            raise ValueError(f"mesh dimensions must be >= 1, got {width}x{height}")
        if pitch_mm <= 0:
            raise ValueError(f"pitch_mm must be positive, got {pitch_mm}")
        self.width = width
        self.height = height
        self.pitch_mm = pitch_mm
        links = self._build_links()
        super().__init__(width * height, links)

    def _build_links(self) -> List[LinkSpec]:
        links: List[LinkSpec] = []

        def node(x: int, y: int) -> int:
            return y * self.width + x

        for y in range(self.height):
            for x in range(self.width):
                src = node(x, y)
                if x + 1 < self.width:
                    links.append(self._link(src, node(x + 1, y), EAST))
                if x - 1 >= 0:
                    links.append(self._link(src, node(x - 1, y), WEST))
                if y + 1 < self.height:
                    links.append(self._link(src, node(x, y + 1), SOUTH))
                if y - 1 >= 0:
                    links.append(self._link(src, node(x, y - 1), NORTH))
        return links

    def _link(self, src: int, dst: int, direction: str) -> LinkSpec:
        return LinkSpec(
            src=src,
            dst=dst,
            src_port=direction,
            dst_port=OPPOSITE[direction],
            kind=LinkKind.NORMAL,
            length_mm=self.pitch_mm,
            span=1,
        )

    def coordinates(self, node: int) -> Tuple[int, int]:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
        return node % self.width, node // self.width

    def node_at(self, coords: Tuple[int, ...]) -> int:
        x, y = coords
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"coordinates {coords} out of range")
        return y * self.width + x
