"""Irregular topologies loaded from a JSON link list.

The substrate's escape hatch: any directed link graph — a gem5-style
custom fabric, a cut-down floorplan, a randomly grown test graph —
becomes a first-class topology by writing it down as JSON::

    {
      "num_nodes": 4,
      "links": [
        {"src": 0, "dst": 1},
        {"src": 1, "dst": 0, "length_mm": 2.0},
        {"src": 1, "dst": 2, "src_port": "X", "dst_port": "Y"},
        ...
      ]
    }

Only ``src`` and ``dst`` are required per link.  ``length_mm`` defaults
to the file-level ``pitch_mm`` (default 1.0), ``kind`` to ``"normal"``,
``span`` to 1 and ``wrap`` to false.  Port names default to ``P<peer>``
— the same name for the output to and the input from one neighbour, so
a full-duplex pair occupies a single router port exactly like a mesh
direction; explicit ``src_port``/``dst_port`` override (required when
parallel links to the same peer would collide).

Routing comes from the table substrate; pairs with no directed path are
reported unroutable (counted drops in simulation), matching the fault
machinery's semantics for severed fabrics.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple, Union

from repro.topology.base import LinkKind, LinkSpec, Topology

_KIND_BY_NAME = {kind.value: kind for kind in LinkKind}


class IrregularTopology(Topology):
    """A topology defined purely by its directed link list."""

    def __init__(
        self,
        num_nodes: int,
        links: Sequence[LinkSpec],
        source: str = "<links>",
    ) -> None:
        #: Where the graph came from (file path or ``"<links>"``).
        self.source = source
        super().__init__(num_nodes, links)

    # Irregular graphs have no geometry; Topology.coordinates already
    # raises NotImplementedError, which is the honest answer here.

    @classmethod
    def from_json(
        cls, path: Union[str, Path]
    ) -> "IrregularTopology":
        """Load a topology from a JSON link-list file."""
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except ValueError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from exc
        return cls.from_dict(data, source=str(path))

    @classmethod
    def from_dict(
        cls, data: Dict[str, Any], source: str = "<dict>"
    ) -> "IrregularTopology":
        """Build from the parsed JSON structure (see module docstring)."""
        try:
            num_nodes = int(data["num_nodes"])
            raw_links = data["links"]
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"{source}: topology JSON needs 'num_nodes' and 'links'"
            ) from exc
        pitch_mm = float(data.get("pitch_mm", 1.0))
        links: List[LinkSpec] = []
        for i, raw in enumerate(raw_links):
            try:
                src, dst = int(raw["src"]), int(raw["dst"])
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"{source}: link {i} needs integer 'src' and 'dst'"
                ) from exc
            kind_name = raw.get("kind", LinkKind.NORMAL.value)
            if kind_name not in _KIND_BY_NAME:
                raise ValueError(
                    f"{source}: link {i} has unknown kind {kind_name!r} "
                    f"(choose from {sorted(_KIND_BY_NAME)})"
                )
            links.append(
                LinkSpec(
                    src=src,
                    dst=dst,
                    src_port=raw.get("src_port", f"P{dst}"),
                    dst_port=raw.get("dst_port", f"P{src}"),
                    kind=_KIND_BY_NAME[kind_name],
                    length_mm=float(raw.get("length_mm", pitch_mm)),
                    span=int(raw.get("span", 1)),
                    wrap=bool(raw.get("wrap", False)),
                )
            )
        return cls(num_nodes, links, source=source)

    def to_dict(self) -> Dict[str, Any]:
        """The JSON structure :meth:`from_dict` accepts (round-trips)."""
        return {
            "num_nodes": self.num_nodes,
            "links": [
                {
                    "src": link.src,
                    "dst": link.dst,
                    "src_port": link.src_port,
                    "dst_port": link.dst_port,
                    "kind": link.kind.value,
                    "length_mm": link.length_mm,
                    "span": link.span,
                    "wrap": link.wrap,
                }
                for link in self.links
            ],
        }

    def to_json(self, path: Union[str, Path]) -> Path:
        """Write the topology to *path* as formatted JSON."""
        path = Path(path)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path


def duplex(
    src: int, dst: int, length_mm: float = 1.0
) -> Tuple[LinkSpec, LinkSpec]:
    """Both directions of a full-duplex irregular link (test helper)."""
    return (
        LinkSpec(src, dst, f"P{dst}", f"P{src}", LinkKind.NORMAL, length_mm),
        LinkSpec(dst, src, f"P{src}", f"P{dst}", LinkKind.NORMAL, length_mm),
    )
