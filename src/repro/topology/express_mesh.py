"""Express mesh topology for 3DM-E (Fig. 7).

The 3DM architecture halves its per-layer link width, leaving half of the
fixed bisection wiring unused (Sec. 3.2.3 / Fig. 6c).  3DM-E spends that
spare bandwidth on one extra physical channel per cardinal direction,
implemented as a *multi-hop express channel* in the style of Dally's
express cubes [39].  Every router therefore has up to nine ports: the local
port, four normal mesh ports and four express ports ("EE", "WW", "NN",
"SS") that skip ``span`` tiles at once.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.topology.base import LinkKind, LinkSpec
from repro.topology.mesh2d import EAST, Mesh2D, NORTH, SOUTH, WEST

EXPRESS_EAST, EXPRESS_WEST = "EE", "WW"
EXPRESS_NORTH, EXPRESS_SOUTH = "NN", "SS"

#: Maps the express port name to (dx, dy) unit direction.
EXPRESS_DIRECTIONS = {
    EXPRESS_EAST: (1, 0),
    EXPRESS_WEST: (-1, 0),
    EXPRESS_SOUTH: (0, 1),
    EXPRESS_NORTH: (0, -1),
}

_EXPRESS_OPPOSITE = {
    EXPRESS_EAST: EXPRESS_WEST,
    EXPRESS_WEST: EXPRESS_EAST,
    EXPRESS_NORTH: EXPRESS_SOUTH,
    EXPRESS_SOUTH: EXPRESS_NORTH,
}

#: Express port name for a normal cardinal direction.
EXPRESS_FOR = {
    EAST: EXPRESS_EAST,
    WEST: EXPRESS_WEST,
    NORTH: EXPRESS_NORTH,
    SOUTH: EXPRESS_SOUTH,
}


class ExpressMesh(Mesh2D):
    """A 2D mesh augmented with span-``span`` express channels.

    An express channel leaves every node whose target
    ``(x +/- span, y +/- span)`` is still inside the grid, so interior nodes
    reach the full 9-port radix while edge nodes keep a smaller radix, just
    as in a plain mesh.
    """

    def __init__(
        self, width: int, height: int, pitch_mm: float, span: int = 2
    ) -> None:
        if span < 2:
            raise ValueError(f"express span must be >= 2, got {span}")
        self.span = span
        super().__init__(width, height, pitch_mm)

    def _build_links(self) -> List[LinkSpec]:
        links = super()._build_links()
        span = self.span

        def node(x: int, y: int) -> int:
            return y * self.width + x

        for y in range(self.height):
            for x in range(self.width):
                src = node(x, y)
                candidates = [
                    (EXPRESS_EAST, x + span, y),
                    (EXPRESS_WEST, x - span, y),
                    (EXPRESS_SOUTH, x, y + span),
                    (EXPRESS_NORTH, x, y - span),
                ]
                for port, tx, ty in candidates:
                    if 0 <= tx < self.width and 0 <= ty < self.height:
                        links.append(
                            LinkSpec(
                                src=src,
                                dst=node(tx, ty),
                                src_port=port,
                                dst_port=_EXPRESS_OPPOSITE[port],
                                kind=LinkKind.EXPRESS,
                                length_mm=self.pitch_mm * span,
                                span=span,
                            )
                        )
        return links

    def express_ports(self, nodeid: int) -> List[str]:
        """Express output port names available at *nodeid*."""
        return [
            name
            for name, link in self.out_ports[nodeid].items()
            if link.kind is LinkKind.EXPRESS
        ]
