"""Common topology abstractions.

A topology is a directed graph of router nodes.  Every directed link is
described by a :class:`LinkSpec` carrying the source/destination nodes, the
*port names* used on either side (e.g. ``"E"`` on the sender pairs with
``"W"`` on the receiver), the physical wire length in millimetres and the
link kind (planar, vertical through-silicon via, or multi-hop express
channel).

Port names are symbolic; the network builder assigns integer port indices
per router (index 0 is always the local injection/ejection port).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

#: Name of the local (processing-element) port present on every router.
LOCAL_PORT = "L"


class LinkKind(enum.Enum):
    """Physical flavour of an inter-router channel."""

    #: Planar wire between adjacent tiles.
    NORMAL = "normal"
    #: Vertical through-silicon-via channel between stacked layers (3DB).
    VERTICAL = "vertical"
    #: Multi-hop express channel between non-adjacent tiles (3DM-E).
    EXPRESS = "express"


@dataclass(frozen=True)
class LinkSpec:
    """One directed inter-router channel.

    Attributes:
        src: source node id.
        dst: destination node id.
        src_port: port name on the source router (e.g. ``"E"``).
        dst_port: port name on the destination router (e.g. ``"W"``).
        kind: physical link kind.
        length_mm: physical wire length in millimetres.
        span: how many mesh hops the channel covers (1 for normal links,
            >1 for express channels).
    """

    src: int
    dst: int
    src_port: str
    dst_port: str
    kind: LinkKind
    length_mm: float
    span: int = 1
    #: True for a torus wrap-around channel (crosses the dateline); the
    #: dateline VC discipline keys off this flag.
    wrap: bool = False


class Topology:
    """Base class for all topologies.

    Subclasses populate :attr:`links` and implement :meth:`coordinates`.
    The base class derives the per-node port tables used by the network
    builder and by routing functions.
    """

    def __init__(self, num_nodes: int, links: Sequence[LinkSpec]) -> None:
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        self.num_nodes = num_nodes
        self.links: List[LinkSpec] = list(links)
        self._validate_links()
        # node -> port name -> LinkSpec leaving through that port
        self.out_ports: Dict[int, Dict[str, LinkSpec]] = {
            n: {} for n in range(num_nodes)
        }
        # node -> port name -> LinkSpec arriving at that port
        self.in_ports: Dict[int, Dict[str, LinkSpec]] = {
            n: {} for n in range(num_nodes)
        }
        for link in self.links:
            if link.src_port in self.out_ports[link.src]:
                raise ValueError(
                    f"duplicate output port {link.src_port!r} on node {link.src}"
                )
            if link.dst_port in self.in_ports[link.dst]:
                raise ValueError(
                    f"duplicate input port {link.dst_port!r} on node {link.dst}"
                )
            self.out_ports[link.src][link.src_port] = link
            self.in_ports[link.dst][link.dst_port] = link

    def _validate_links(self) -> None:
        for link in self.links:
            for node in (link.src, link.dst):
                if not 0 <= node < self.num_nodes:
                    raise ValueError(f"link {link} references unknown node {node}")
            if link.src == link.dst:
                raise ValueError(f"self-loop link on node {link.src}")
            if link.length_mm < 0:
                raise ValueError(f"negative link length: {link}")
            if link.span < 1:
                raise ValueError(f"link span must be >= 1: {link}")

    # -- geometry ---------------------------------------------------------

    def coordinates(self, node: int) -> Tuple[int, ...]:
        """Integer grid coordinates of *node* (dimension depends on mesh)."""
        raise NotImplementedError

    def node_at(self, coords: Tuple[int, ...]) -> int:
        """Inverse of :meth:`coordinates`."""
        raise NotImplementedError

    # -- convenience ------------------------------------------------------

    def port_names(self, node: int) -> List[str]:
        """Symbolic names of all ports on *node*, local port first.

        A port name appears once even when it is used for both an input and
        an output channel (the usual full-duplex case).
        """
        names = [LOCAL_PORT]
        seen = {LOCAL_PORT}
        for name in list(self.out_ports[node]) + list(self.in_ports[node]):
            if name not in seen:
                seen.add(name)
                names.append(name)
        return names

    def neighbors(self, node: int) -> List[int]:
        """Nodes reachable from *node* over a single channel."""
        return [link.dst for link in self.out_ports[node].values()]

    def degree(self, node: int) -> int:
        """Number of non-local output ports on *node*."""
        return len(self.out_ports[node])

    def max_radix(self) -> int:
        """Largest router radix in the network, counting the local port."""
        return 1 + max(self.degree(n) for n in range(self.num_nodes))

    def link_between(self, src: int, dst: int) -> LinkSpec:
        """The directed link from *src* to *dst* (raises if absent)."""
        for link in self.out_ports[src].values():
            if link.dst == dst:
                return link
        raise KeyError(f"no link from {src} to {dst}")

    def iter_nodes(self) -> Iterable[int]:
        return range(self.num_nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(nodes={self.num_nodes}, "
            f"links={len(self.links)})"
        )
