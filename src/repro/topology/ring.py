"""Bidirectional ring topology (library extension beyond the paper's
meshes; cf. the ring-router microarchitecture literature in PAPERS.md).

Every router has radix 3 — local plus one channel in each rotational
direction — the cheapest fabric that still offers path diversity.  The
closing links are flagged ``wrap`` like the torus dateline channels and,
per the folded layout, modelled at twice the pitch; all other links are
one pitch long.

No coordinate routing function exists for a ring with wrap links: the
canonical routing comes from the generic table substrate
(:class:`~repro.noc.table_routing.TableRouting`), whose auto mode picks
the escape-VC scheme — shortest paths both ways around, deadlock-free
with the paper's standard 2 VCs because each direction's dependency
cycle is cut at exactly one (antipodal) forbidden turn.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.topology.base import LinkKind, LinkSpec, Topology

#: Rotational port names: clockwise = increasing node id.
CLOCKWISE, COUNTER = "CW", "CCW"


class Ring(Topology):
    """A bidirectional ring of ``num_nodes`` (>= 3) routers.

    Node ids run clockwise; node *i* reaches ``(i + 1) % N`` through its
    ``CW`` port and ``(i - 1) % N`` through ``CCW``.
    """

    def __init__(self, num_nodes: int, pitch_mm: float) -> None:
        if num_nodes < 3:
            raise ValueError(f"a ring needs >= 3 nodes, got {num_nodes}")
        if pitch_mm <= 0:
            raise ValueError(f"pitch_mm must be positive, got {pitch_mm}")
        self.pitch_mm = pitch_mm
        links: List[LinkSpec] = []
        for i in range(num_nodes):
            cw = (i + 1) % num_nodes
            ccw = (i - 1) % num_nodes
            links.append(self._link(i, cw, CLOCKWISE, COUNTER, i == num_nodes - 1))
            links.append(self._link(i, ccw, COUNTER, CLOCKWISE, i == 0))
        super().__init__(num_nodes, links)

    def _link(
        self, src: int, dst: int, src_port: str, dst_port: str, wrap: bool
    ) -> LinkSpec:
        return LinkSpec(
            src=src,
            dst=dst,
            src_port=src_port,
            dst_port=dst_port,
            kind=LinkKind.NORMAL,
            # Folded layout: the closing wire doubles back across the row.
            length_mm=self.pitch_mm * (2 if wrap else 1),
            span=1,
            wrap=wrap,
        )

    def coordinates(self, node: int) -> Tuple[int, ...]:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
        return (node,)

    def node_at(self, coords: Tuple[int, ...]) -> int:
        (position,) = coords
        if not 0 <= position < self.num_nodes:
            raise ValueError(f"coordinates {coords} out of range")
        return position
