"""2D torus topology (library extension beyond the paper's meshes).

A k-ary 2-cube: the mesh plus wrap-around channels closing each row and
column.  Wrap channels are flagged (``LinkSpec.wrap``) so the dateline
virtual-channel discipline in
:class:`repro.noc.routing.TorusXYRouting` can keep wormhole routing
deadlock-free: packets travel on VC 0 until they cross a wrap channel in
the current dimension, then switch to VC 1 (Dally's dateline scheme),
which breaks the cyclic channel dependency each ring would otherwise
form.

Physically the wrap wire is modelled with the folded-torus layout, where
every channel is twice the mesh pitch (the standard equalised-length
embedding).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.topology.base import LinkKind, LinkSpec, Topology
from repro.topology.mesh2d import EAST, NORTH, OPPOSITE, SOUTH, WEST


class Torus2D(Topology):
    """A ``width`` x ``height`` 2D torus (width, height >= 3).

    Node ids are row-major like :class:`~repro.topology.mesh2d.Mesh2D`.
    Every router has the full 5-port radix; all channels have the
    folded-torus length ``2 * pitch_mm``.
    """

    def __init__(self, width: int, height: int, pitch_mm: float) -> None:
        if width < 3 or height < 3:
            raise ValueError(
                f"torus dimensions must be >= 3 (got {width}x{height}); "
                "2-rings degenerate into duplicate channels"
            )
        if pitch_mm <= 0:
            raise ValueError(f"pitch_mm must be positive, got {pitch_mm}")
        self.width = width
        self.height = height
        self.pitch_mm = pitch_mm
        super().__init__(width * height, self._build_links())

    def _build_links(self) -> List[LinkSpec]:
        links: List[LinkSpec] = []
        length = 2 * self.pitch_mm  # folded-torus equalised wires

        def node(x: int, y: int) -> int:
            return (y % self.height) * self.width + (x % self.width)

        for y in range(self.height):
            for x in range(self.width):
                src = node(x, y)
                moves = [
                    (EAST, node(x + 1, y), x == self.width - 1),
                    (WEST, node(x - 1, y), x == 0),
                    (SOUTH, node(x, y + 1), y == self.height - 1),
                    (NORTH, node(x, y - 1), y == 0),
                ]
                for direction, dst, wraps in moves:
                    links.append(
                        LinkSpec(
                            src=src,
                            dst=dst,
                            src_port=direction,
                            dst_port=OPPOSITE[direction],
                            kind=LinkKind.NORMAL,
                            length_mm=length,
                            span=1,
                            wrap=wraps,
                        )
                    )
        return links

    def coordinates(self, node: int) -> Tuple[int, int]:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
        return node % self.width, node // self.width

    def node_at(self, coords: Tuple[int, ...]) -> int:
        x, y = coords
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"coordinates {coords} out of range")
        return y * self.width + x
