"""Latency experiments (Fig. 11a-d)."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cache.hierarchy import generate_trace
from repro.core.arch import ArchitectureConfig, standard_configs
from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import (
    PointResult,
    run_nuca_point,
    run_trace_point,
    run_uniform_point,
)
from repro.experiments.store import PointSpec, ResultStore, cached_point_run
from repro.traffic.workloads import WORKLOADS

#: Series type: architecture name -> [(x, PointResult)].
Sweep = Dict[str, List[Tuple[float, PointResult]]]


def _configs(configs: Optional[List[ArchitectureConfig]]) -> List[ArchitectureConfig]:
    return standard_configs() if configs is None else configs


def fig11a_uniform_latency(
    settings: Optional[ExperimentSettings] = None,
    configs: Optional[List[ArchitectureConfig]] = None,
    store: Optional[ResultStore] = None,
) -> Sweep:
    """Fig. 11a: average latency vs injection rate, uniform random.

    ``store`` (opt-in) serves previously simulated points from the
    content-addressed result cache and fills it with fresh ones.
    """
    settings = settings or ExperimentSettings.from_env()
    out: Sweep = {}
    for config in _configs(configs):
        series = []
        for rate in settings.uniform_rates:
            point = cached_point_run(
                store, PointSpec(config, "uniform", rate), settings
            )
            series.append((rate, point))
        out[config.name] = series
    return out


def fig11b_nuca_latency(
    settings: Optional[ExperimentSettings] = None,
    configs: Optional[List[ArchitectureConfig]] = None,
    store: Optional[ResultStore] = None,
) -> Sweep:
    """Fig. 11b: average latency vs request rate, NUCA-UR."""
    settings = settings or ExperimentSettings.from_env()
    out: Sweep = {}
    for config in _configs(configs):
        series = []
        for rate in settings.nuca_rates:
            point = cached_point_run(
                store, PointSpec(config, "nuca", rate), settings
            )
            series.append((rate, point))
        out[config.name] = series
    return out


def fig11c_trace_latency(
    settings: Optional[ExperimentSettings] = None,
    configs: Optional[List[ArchitectureConfig]] = None,
) -> Dict[str, Dict[str, PointResult]]:
    """Fig. 11c: per-workload MP-trace results, keyed workload -> arch.

    Normalisation against 2DB (as the paper plots it) is left to the
    caller/report: each PointResult carries absolute latency.
    """
    settings = settings or ExperimentSettings.from_env()
    out: Dict[str, Dict[str, PointResult]] = {}
    for workload_name in settings.workloads:
        profile = WORKLOADS[workload_name]
        per_arch: Dict[str, PointResult] = {}
        for config in _configs(configs):
            records, _ = generate_trace(
                config, profile, cycles=settings.trace_cycles, seed=settings.seed
            )
            per_arch[config.name] = run_trace_point(
                config, records, settings, label=workload_name
            )
        out[workload_name] = per_arch
    return out


def fig11d_hop_counts(
    settings: Optional[ExperimentSettings] = None,
    configs: Optional[List[ArchitectureConfig]] = None,
) -> Dict[str, Dict[str, float]]:
    """Fig. 11d: average hop count for UR / NUCA-UR / MP traces."""
    settings = settings or ExperimentSettings.from_env()
    configs = _configs(configs)
    mid_ur = settings.uniform_rates[len(settings.uniform_rates) // 2]
    mid_nuca = settings.nuca_rates[len(settings.nuca_rates) // 2]
    workload = WORKLOADS[settings.workloads[0]]

    out: Dict[str, Dict[str, float]] = {"UR": {}, "NUCA-UR": {}, "MP": {}}
    for config in configs:
        out["UR"][config.name] = run_uniform_point(
            config, mid_ur, settings
        ).avg_hops
        out["NUCA-UR"][config.name] = run_nuca_point(
            config, mid_nuca, settings
        ).avg_hops
        records, _ = generate_trace(
            config, workload, cycles=settings.trace_cycles, seed=settings.seed
        )
        out["MP"][config.name] = run_trace_point(
            config, records, settings, label=workload.name
        ).avg_hops
    return out
