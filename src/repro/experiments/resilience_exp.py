"""Resilience experiments: latency/power distributions under faults and
process variation (the ``fig_resilience`` family).

Two axes, both run through the cached sweep machinery (fault and
variation parameters are part of :func:`~repro.experiments.store
.point_key`, so every point is individually content-addressed):

* **variation** — the same (architecture, rate) point re-simulated under
  many variation seeds at a fixed sigma: latency and power become
  *distributions*, and designs whose ST+LT merge sits close to the
  stage budget show a bimodal latency split when slow corners force the
  split pipeline.
* **faults** — seeded-random link kills at increasing counts
  (drain-mode fences: routing reroutes, committed wormholes finish);
  packets with no surviving path are counted drops, so delivery
  fraction degrades gracefully instead of the run aborting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.arch import ArchitectureConfig, standard_configs
from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import PointResult
from repro.experiments.store import PointSpec, ResultStore, cached_point_run

#: Default number of variation seeds per architecture (>= 20 keeps the
#: distributions meaningful).
DEFAULT_VARIATION_SEEDS = 20
#: Default per-tier variation sigma.
DEFAULT_VARIATION_SIGMA = 0.1
#: Default fault counts for the damage axis.
DEFAULT_FAULT_COUNTS: Tuple[int, ...] = (0, 1, 2)

#: arch -> [(x, PointResult)] — x is a variation seed or a fault count.
Series = Dict[str, List[Tuple[float, PointResult]]]


def _configs(
    configs: Optional[List[ArchitectureConfig]],
) -> List[ArchitectureConfig]:
    return standard_configs() if configs is None else configs


def _default_rate(settings: ExperimentSettings) -> float:
    """A fixed moderate load for the distribution studies: the median
    configured uniform rate (below saturation for every design)."""
    rates = sorted(settings.uniform_rates)
    return rates[len(rates) // 2]


def fig_resilience_variation(
    settings: Optional[ExperimentSettings] = None,
    configs: Optional[List[ArchitectureConfig]] = None,
    store: Optional[ResultStore] = None,
    sigma: float = DEFAULT_VARIATION_SIGMA,
    variation_seeds: Optional[Sequence[int]] = None,
    rate: Optional[float] = None,
) -> Series:
    """Latency/power distribution across variation seeds, per arch."""
    settings = settings or ExperimentSettings.from_env()
    seeds = (
        range(DEFAULT_VARIATION_SEEDS)
        if variation_seeds is None
        else variation_seeds
    )
    load = _default_rate(settings) if rate is None else rate
    out: Series = {}
    for config in _configs(configs):
        series = []
        for seed in seeds:
            spec = PointSpec(
                config,
                "uniform",
                load,
                variation_sigma=sigma,
                variation_seed=seed,
            )
            series.append((float(seed), cached_point_run(store, spec, settings)))
        out[config.name] = series
    return out


def fig_resilience_faults(
    settings: Optional[ExperimentSettings] = None,
    configs: Optional[List[ArchitectureConfig]] = None,
    store: Optional[ResultStore] = None,
    fault_counts: Sequence[int] = DEFAULT_FAULT_COUNTS,
    fault_seed: int = 1,
    rate: Optional[float] = None,
) -> Series:
    """Latency/drop degradation vs injected link-fault count, per arch.

    Faults are drain-mode fences (detected failures): routing reroutes
    where a surviving path exists, unroutable packets count as drops.
    """
    settings = settings or ExperimentSettings.from_env()
    load = _default_rate(settings) if rate is None else rate
    out: Series = {}
    for config in _configs(configs):
        series = []
        for count in fault_counts:
            spec = PointSpec(
                config,
                "uniform",
                load,
                fault_random_links=count,
                fault_seed=fault_seed,
                fault_mode="drain",
            )
            series.append((float(count), cached_point_run(store, spec, settings)))
        out[config.name] = series
    return out


def fig_resilience(
    settings: Optional[ExperimentSettings] = None,
    configs: Optional[List[ArchitectureConfig]] = None,
    store: Optional[ResultStore] = None,
    sigma: float = DEFAULT_VARIATION_SIGMA,
    variation_seeds: Optional[Sequence[int]] = None,
    fault_counts: Sequence[int] = DEFAULT_FAULT_COUNTS,
    rate: Optional[float] = None,
) -> Dict[str, Series]:
    """Both resilience axes: ``{"variation": ..., "faults": ...}``."""
    return {
        "variation": fig_resilience_variation(
            settings,
            configs,
            store,
            sigma=sigma,
            variation_seeds=variation_seeds,
            rate=rate,
        ),
        "faults": fig_resilience_faults(
            settings, configs, store, fault_counts=fault_counts, rate=rate
        ),
    }


def distribution_cdf(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF points ``(value, cumulative fraction)``."""
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return []
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def variation_summary(series: Series) -> Dict[str, Dict[str, float]]:
    """Per-arch spread statistics over the variation distribution."""
    out: Dict[str, Dict[str, float]] = {}
    for arch, points in series.items():
        lats = [p.avg_latency for _, p in points]
        powers = [p.total_power_w for _, p in points]
        n = len(lats) or 1
        out[arch] = {
            "samples": float(len(lats)),
            "latency_mean": sum(lats) / n,
            "latency_min": min(lats) if lats else 0.0,
            "latency_max": max(lats) if lats else 0.0,
            "power_mean": sum(powers) / n,
            "power_min": min(powers) if powers else 0.0,
            "power_max": max(powers) if powers else 0.0,
        }
    return out


def fault_summary_table(series: Series) -> Dict[str, List[Dict[str, float]]]:
    """Per-arch rows of (fault count, latency, delivered/dropped)."""
    out: Dict[str, List[Dict[str, float]]] = {}
    for arch, points in series.items():
        out[arch] = [
            {
                "faults": count,
                "avg_latency": p.avg_latency,
                "packets_delivered": float(p.sim.packets_delivered),
                "packets_dropped": float(p.sim.packets_dropped),
                "saturated": float(p.sim.saturated),
            }
            for count, p in points
        ]
    return out
