"""Ablation studies over the design choices the paper fixes.

The paper justifies several parameters without sweeping them (Sec. 3.2.4:
two VCs; Sec. 3.2.1: eight-flit buffers; Sec. 3.3: span-2 express
channels; Fig. 8: the pipeline organisation) and names QoS and fault
tolerance as alternative uses of the spare bandwidth.  These harnesses
sweep each choice so the sensitivity is measured rather than asserted.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

from repro.core.arch import ArchitectureConfig, make_2db, make_3dm, make_3dme
from repro.core.fault import both_directions, build_fault_tolerant_network
from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import PointResult, run_uniform_point
from repro.noc.network import Network
from repro.noc.simulator import Simulator
from repro.topology.express_mesh import ExpressMesh
from repro.traffic.synthetic import UniformRandomTraffic


def ablate_pipeline_depth(
    settings: Optional[ExperimentSettings] = None,
    rate: float = 0.2,
) -> Dict[str, PointResult]:
    """Fig. 8 organisations on the 2DB router + MIRA's merge on 3DM.

    Labels carry the per-hop cycle count so the table reads like Fig. 8.
    """
    settings = settings or ExperimentSettings.from_env()
    base = make_2db()
    variants = {
        "2DB 4-stage (Fig.8a, 5cyc/hop)": base,
        "2DB +spec SA (Fig.8b, 4cyc/hop)": base.with_pipeline_options(
            speculative_sa=True
        ),
        "2DB +lookahead (Fig.8c, 3cyc/hop)": base.with_pipeline_options(
            speculative_sa=True, lookahead_rc=True
        ),
        "3DM merged ST+LT (Fig.8d, 4cyc/hop)": make_3dm(),
        "3DM merged+spec+lookahead (2cyc/hop)": make_3dm().with_pipeline_options(
            speculative_sa=True, lookahead_rc=True
        ),
    }
    return {
        label: run_uniform_point(config, rate, settings)
        for label, config in variants.items()
    }


def ablate_vc_count(
    settings: Optional[ExperimentSettings] = None,
    rate: float = 0.2,
    counts: Sequence[int] = (1, 2, 4),
) -> Dict[int, PointResult]:
    """Virtual channels per port (the paper fixes 2; Sec. 3.2.4)."""
    settings = settings or ExperimentSettings.from_env()
    out: Dict[int, PointResult] = {}
    for vcs in counts:
        config = dataclasses.replace(make_3dm(), vcs=vcs)
        out[vcs] = run_uniform_point(config, rate, settings)
    return out


def ablate_buffer_depth(
    settings: Optional[ExperimentSettings] = None,
    rate: float = 0.2,
    depths: Sequence[int] = (2, 4, 8, 16),
) -> Dict[int, PointResult]:
    """Flits per VC buffer (the paper fixes 8; Sec. 3.2.1)."""
    settings = settings or ExperimentSettings.from_env()
    out: Dict[int, PointResult] = {}
    for depth in depths:
        config = dataclasses.replace(make_3dm(), buffer_depth=depth)
        out[depth] = run_uniform_point(config, rate, settings)
    return out


def ablate_express_span(
    settings: Optional[ExperimentSettings] = None,
    rate: float = 0.2,
    spans: Sequence[int] = (2, 3),
) -> Dict[int, PointResult]:
    """Express-channel span.

    Span 3 cuts hops further but its 4.74 mm channel no longer fits the
    single-cycle ST+LT stage (Table 3 logic), so the factory silently
    reverts those variants to the split pipeline — the trade-off this
    ablation exists to expose.
    """
    settings = settings or ExperimentSettings.from_env()
    out: Dict[int, PointResult] = {}
    for span in spans:
        out[span] = run_uniform_point(make_3dme(span=span), rate, settings)
    return out


def ablate_qos(
    settings: Optional[ExperimentSettings] = None,
    rate: float = 0.3,
    high_priority_fraction: float = 0.2,
) -> Dict[str, Dict[int, float]]:
    """Per-priority-class latency with and without QoS arbitration.

    Returns ``{"qos" | "fifo": {priority: avg latency}}``.
    """
    settings = settings or ExperimentSettings.from_env()
    config = make_3dme()
    out: Dict[str, Dict[int, float]] = {}
    for label, qos in (("qos", True), ("fifo", False)):
        network = Network(
            topology=config.build_topology(),
            num_vcs=config.vcs,
            buffer_depth=config.buffer_depth,
            combined_st_lt=config.combined_st_lt,
            qos_enabled=qos,
        )
        traffic = UniformRandomTraffic(
            num_nodes=config.num_nodes,
            flit_rate=rate,
            seed=settings.seed,
            high_priority_fraction=high_priority_fraction,
        )
        sim = Simulator(
            network,
            traffic,
            warmup_cycles=settings.warmup_cycles,
            measure_cycles=settings.measure_cycles,
            drain_cycles=settings.drain_cycles,
        )
        sim.run()
        out[label] = {
            priority: network.stats.avg_latency_for_priority(priority)
            for priority in (0, 1)
        }
    return out


def ablate_vc_partitioning(
    settings: Optional[ExperimentSettings] = None,
    request_rate: float = 0.15,
) -> Dict[str, Dict[str, float]]:
    """Pooled VCs vs one-VC-per-traffic-class (Sec. 3.2.4 decision ii).

    Runs NUCA request/response traffic (the workload the partitioning is
    designed for) both ways.  Returns
    ``{mode: {"avg", "ctrl", "data"}}`` average latencies.
    """
    from repro.traffic.nuca import NucaUniformTraffic

    settings = settings or ExperimentSettings.from_env()
    config = make_3dm()
    out: Dict[str, Dict[str, float]] = {}
    for label, partitioned in (("pooled", False), ("per-class", True)):
        network = Network(
            topology=config.build_topology(),
            num_vcs=config.vcs,
            buffer_depth=config.buffer_depth,
            combined_st_lt=config.combined_st_lt,
            vc_by_class=partitioned,
        )
        traffic = NucaUniformTraffic(
            cpu_nodes=config.cpu_nodes,
            cache_nodes=config.cache_nodes,
            request_rate=request_rate,
            seed=settings.seed,
        )
        sim = Simulator(
            network,
            traffic,
            warmup_cycles=settings.warmup_cycles,
            measure_cycles=settings.measure_cycles,
            drain_cycles=settings.drain_cycles,
        )
        result = sim.run()
        out[label] = {
            "avg": result.avg_latency,
            "ctrl": result.avg_latency_by_class["ctrl"],
            "data": result.avg_latency_by_class["data"],
        }
    return out


def ablate_3db_cpu_placement(
    settings: Optional[ExperimentSettings] = None,
    request_rate: float = 0.1,
) -> Dict[str, Dict[str, float]]:
    """The 3DB thermal-vs-latency placement trade (Sec. 3.1).

    The paper pins CPUs to the heat-sink layer, accepting the NUCA
    hop-count penalty of Fig. 11d.  This ablation quantifies both sides:
    NUCA-UR latency/hops and peak steady-state temperature for the two
    placements.  Returns ``{placement: {metric: value}}``.
    """
    from repro.core.arch import make_3db
    from repro.experiments.runner import run_nuca_point
    from repro.thermal.hotspot import steady_state

    settings = settings or ExperimentSettings.from_env()
    out: Dict[str, Dict[str, float]] = {}
    for placement in ("top", "spread"):
        config = make_3db(cpu_placement=placement)
        point = run_nuca_point(config, request_rate, settings)
        thermal = steady_state(config, point.router_power_per_node())
        out[placement] = {
            "avg_latency": point.avg_latency,
            "avg_hops": point.avg_hops,
            "avg_temp_k": thermal.avg_k,
            "max_temp_k": thermal.max_k,
        }
    return out


def ablate_link_failures(
    settings: Optional[ExperimentSettings] = None,
    rate: float = 0.15,
    failure_counts: Sequence[int] = (0, 1, 2, 4),
) -> Dict[int, float]:
    """Average latency as interior normal channels fail (full duplex).

    Quantifies the graceful degradation the express siblings buy.
    Returns {failed links: avg latency}.
    """
    settings = settings or ExperimentSettings.from_env()
    config = make_3dme()
    mesh = ExpressMesh(6, 6, pitch_mm=config.pitch_mm, span=2)
    # Interior horizontal links whose express sibling exists on both ends.
    candidates = [
        (mesh.node_at((1, y)), mesh.node_at((2, y))) for y in range(1, 5)
    ]
    out: Dict[int, float] = {}
    for count in failure_counts:
        if count > len(candidates):
            raise ValueError(f"at most {len(candidates)} failure sites available")
        failed = set()
        for src, dst in candidates[:count]:
            failed |= both_directions(src, dst)
        network = build_fault_tolerant_network(config, failed)
        traffic = UniformRandomTraffic(
            num_nodes=config.num_nodes, flit_rate=rate, seed=settings.seed
        )
        sim = Simulator(
            network,
            traffic,
            warmup_cycles=settings.warmup_cycles,
            measure_cycles=settings.measure_cycles,
            drain_cycles=settings.drain_cycles,
        )
        out[count] = sim.run().avg_latency
    return out
