"""Headline-claim validation: every shape DESIGN.md commits to, checked.

Runs a focused set of simulations/models and evaluates each of the
paper's headline claims, producing a (claim, paper, measured, verdict)
table.  This is the one-call answer to "did the reproduction hold?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.arch import make_2db, make_3db, make_3dm, make_3dme
from repro.core.express import average_hops, nuca_pairs
from repro.experiments.config import ExperimentSettings
from repro.experiments.store import PointSpec, ResultStore, cached_point_run
from repro.experiments.thermal_exp import fig13c_temperature_reduction
from repro.power.gating import shutdown_saving
from repro.power.orion import RouterEnergyModel
from repro.timing.delay import stage_delay_report


@dataclass(frozen=True)
class Claim:
    """One validated headline claim."""

    claim: str
    paper: str
    measured: str
    holds: bool


def evaluate_headline_claims(
    settings: Optional[ExperimentSettings] = None,
    rate: float = 0.3,
    store: Optional[ResultStore] = None,
) -> List[Claim]:
    """Evaluate the headline claims at one uniform-random load point.

    ``store`` (opt-in) reuses simulation points already in the result
    cache — a full figure run that populated the cache makes this check
    nearly free.
    """
    settings = settings or ExperimentSettings.from_env()
    configs = {
        "2DB": make_2db(),
        "3DB": make_3db(),
        "3DM": make_3dm(),
        "3DM(NC)": make_3dm(nc=True),
        "3DM-E": make_3dme(),
    }
    points = {
        name: cached_point_run(
            store, PointSpec(config, "uniform", rate), settings
        )
        for name, config in configs.items()
    }
    claims: List[Claim] = []

    def add(claim: str, paper: str, measured: str, holds: bool) -> None:
        claims.append(Claim(claim, paper, measured, holds))

    lat = {n: p.avg_latency for n, p in points.items()}
    pwr = {n: p.total_power_w for n, p in points.items()}

    saving = 1 - lat["3DM-E"] / lat["2DB"]
    add("3DM-E latency vs 2DB (UR)", "up to 51% lower",
        f"{saving:.0%} lower", 0.30 <= saving <= 0.60)

    saving = 1 - lat["3DM-E"] / lat["3DB"]
    add("3DM-E latency vs 3DB (UR)", "~26% lower",
        f"{saving:.0%} lower", 0.15 <= saving <= 0.40)

    saving = 1 - lat["3DM"] / lat["3DM(NC)"]
    add("ST+LT merge benefit (3DM vs NC)", "up to 14% lower",
        f"{saving:.0%} lower", 0.05 <= saving <= 0.25)

    saving = 1 - pwr["3DM-E"] / pwr["2DB"]
    add("3DM-E power vs 2DB (UR)", "up to 42% lower",
        f"{saving:.0%} lower", 0.20 <= saving <= 0.55)

    saving = 1 - pwr["3DM"] / pwr["2DB"]
    add("3DM power vs 2DB (UR)", "~22% lower",
        f"{saving:.0%} lower", saving > 0.10)

    pdp = {n: p.pdp for n, p in points.items()}
    add("PDP ordering", "3DM-E best, 2DB worst",
        f"best={min(pdp, key=pdp.get)}, worst={max(pdp, key=pdp.get)}",
        min(pdp, key=pdp.get) == "3DM-E" and max(pdp, key=pdp.get) == "2DB")

    # Hop-count crossover (exact graph computation, no simulation noise).
    cfg2, cfg3 = configs["2DB"], configs["3DB"]
    ur_2db = average_hops(cfg2.build_topology())
    ur_3db = average_hops(cfg3.build_topology())
    nuca_2db = average_hops(
        cfg2.build_topology(), nuca_pairs(cfg2.cpu_nodes, cfg2.cache_nodes)
    )
    nuca_3db = average_hops(
        cfg3.build_topology(), nuca_pairs(cfg3.cpu_nodes, cfg3.cache_nodes)
    )
    add("3DB hop count flips under NUCA",
        "3DB < 2DB on UR, > 2DB on NUCA",
        f"UR {ur_3db:.2f} vs {ur_2db:.2f}; NUCA {nuca_3db:.2f} vs {nuca_2db:.2f}",
        ur_3db < ur_2db and nuca_3db > nuca_2db)

    # Table 3 merge verdicts (analytic).
    r2 = stage_delay_report("2DB", 5, 128, 1, 3.16)
    r3 = stage_delay_report("3DM", 5, 128, 4, 1.58)
    re = stage_delay_report("3DM-E", 9, 128, 4, 3.16)
    add("ST+LT merge feasibility (Table 3)",
        "2DB no; 3DM/3DM-E yes",
        f"{r2.combined_ps:.0f}/{r3.combined_ps:.0f}/{re.combined_ps:.0f} ps",
        (not r2.can_combine) and r3.can_combine and re.can_combine)

    # Fig. 9 energy.
    e = {
        n: RouterEnergyModel.for_config(c).flit_hop_energy_j()
        for n, c in configs.items()
        if n in ("2DB", "3DB", "3DM", "3DM-E")
    }
    saving = 1 - e["3DM"] / e["2DB"]
    add("3DM flit energy vs 2DB (Fig. 9)", "~35% lower",
        f"{saving:.0%} lower", 0.30 <= saving <= 0.55)

    # Shutdown saving at 50% short flits (analytic Fig. 13b).
    s = shutdown_saving(configs["3DM"], 0.50).saving_fraction
    add("Shutdown saving @50% short flits", "up to 36%",
        f"{s:.0%}", 0.25 <= s <= 0.37)

    # Simulated shutdown path agrees with the analytic model when the
    # latter is evaluated at the measured short-flit fraction (header
    # and control flits are short by construction, so the measured
    # fraction exceeds the nominal payload knob).
    gated = cached_point_run(
        store,
        PointSpec(
            configs["3DM"], "uniform", rate,
            short_flit_fraction=0.50, shutdown_enabled=True,
        ),
        settings,
    )
    sim_saving = gated.layer_power.shutdown_saving_fraction
    events = gated.sim.events
    measured_fraction = (
        events.short_flit_hops / events.flit_hops if events.flit_hops else 0.0
    )
    ref_saving = shutdown_saving(
        configs["3DM"], measured_fraction
    ).saving_fraction
    rel_err = abs(sim_saving - ref_saving) / ref_saving if ref_saving else 1.0
    add("Simulated vs analytic shutdown saving (Fig. 13b)",
        "within 2% relative",
        f"{sim_saving:.1%} vs {ref_saving:.1%} "
        f"@measured {measured_fraction:.0%} short",
        rel_err <= 0.02)

    # Temperature drop trend (Fig. 13c).
    drops = fig13c_temperature_reduction(
        settings, rates=tuple(settings.uniform_rates[:2]), store=store
    )
    values = list(drops.values())
    add("Temperature drop grows with injection (Fig. 13c)",
        "monotone, up to 1.3 K",
        " -> ".join(f"{v:.2f}K" for v in values),
        all(v > 0 for v in values) and values == sorted(values))

    return claims


def render_claims(claims: List[Claim]) -> str:
    """Format the claims as an aligned table."""
    from repro.experiments.report import format_table

    rows = [
        [c.claim, c.paper, c.measured, "PASS" if c.holds else "FAIL"]
        for c in claims
    ]
    return format_table(["claim", "paper", "measured", "verdict"], rows)
