"""MESI vs MOESI protocol comparison (extension experiment).

MOESI adds cache-to-cache forwarding: a dirty owner supplies readers
directly (3-hop transactions), avoiding recalls-plus-writebacks.  On the
NoC this trades data-message routes (bank->CPU becomes CPU->CPU) and
extra control messages (FwdGetS/FwdDone) against eliminated WbData
packets.  This harness runs the same workload under both protocols and
reports the message mix and the resulting network latency/power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cache.hierarchy import generate_trace
from repro.core.arch import make_3dm
from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import PointResult, run_trace_point
from repro.traffic.workloads import WORKLOADS


@dataclass(frozen=True)
class ProtocolResult:
    """One protocol's traffic characteristics + network outcome."""

    protocol: str
    messages_by_type: Dict[str, int]
    cache_to_cache: int
    avg_miss_latency: float
    point: PointResult

    @property
    def total_messages(self) -> int:
        return sum(self.messages_by_type.values())

    @property
    def writebacks(self) -> int:
        return self.messages_by_type.get("WbData", 0)


def compare_protocols(
    settings: Optional[ExperimentSettings] = None,
    workload: str = "barnes",
) -> Dict[str, ProtocolResult]:
    """Run *workload* under MESI and MOESI on the 3DM network."""
    settings = settings or ExperimentSettings.from_env()
    if workload not in WORKLOADS:
        raise ValueError(f"unknown workload {workload!r}")
    config = make_3dm()
    out: Dict[str, ProtocolResult] = {}
    for protocol in ("mesi", "moesi"):
        records, stats = generate_trace(
            config,
            WORKLOADS[workload],
            cycles=settings.trace_cycles,
            seed=settings.seed,
            protocol=protocol,
        )
        point = run_trace_point(
            config, records, settings, label=f"{workload}/{protocol}"
        )
        out[protocol] = ProtocolResult(
            protocol=protocol,
            messages_by_type=dict(stats.messages_by_type),
            cache_to_cache=stats.cache_to_cache,
            avg_miss_latency=stats.avg_miss_latency,
            point=point,
        )
    return out
