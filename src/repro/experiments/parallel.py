"""Parallel sweep execution over processes.

Full-scale sweeps (9 rates x 6 architectures x thousands of cycles) are
embarrassingly parallel; this module fans the points out over a process
pool.  Workers rebuild everything from picklable descriptions
(architecture enum + kwargs + rate), so no simulator state crosses the
process boundary.
"""

from __future__ import annotations

from multiprocessing import get_context
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.arch import Architecture, make_architecture
from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import PointResult, run_nuca_point, run_uniform_point

#: One unit of work: (architecture, rate, traffic kind).
WorkItem = Tuple[Architecture, float, str]


def _run_item(args: Tuple[WorkItem, ExperimentSettings]) -> Tuple[str, float, PointResult]:
    (arch, rate, kind), settings = args
    config = make_architecture(arch)
    if kind == "uniform":
        point = run_uniform_point(config, rate, settings)
    elif kind == "nuca":
        point = run_nuca_point(config, rate, settings)
    else:
        raise ValueError(f"unknown traffic kind {kind!r}")
    return config.name, rate, point


def parallel_sweep(
    archs: Sequence[Architecture],
    rates: Sequence[float],
    settings: Optional[ExperimentSettings] = None,
    kind: str = "uniform",
    processes: int = 2,
) -> Dict[str, List[Tuple[float, PointResult]]]:
    """Run ``archs x rates`` points over *processes* workers.

    Returns the same ``arch -> [(rate, PointResult)]`` structure as the
    serial harnesses, so the report/export helpers apply unchanged.
    """
    settings = settings or ExperimentSettings.from_env()
    if processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    items = [((arch, rate, kind), settings) for arch in archs for rate in rates]

    if processes == 1:
        results = [_run_item(item) for item in items]
    else:
        ctx = get_context("fork")  # workers inherit the loaded package
        with ctx.Pool(processes=processes) as pool:
            results = pool.map(_run_item, items)

    out: Dict[str, List[Tuple[float, PointResult]]] = {}
    for name, rate, point in results:
        out.setdefault(name, []).append((rate, point))
    for series in out.values():
        series.sort(key=lambda pair: pair[0])
    return out
