"""Parallel sweep execution over processes.

Full-scale sweeps (9 rates x 6 architectures x thousands of cycles) are
embarrassingly parallel; this module fans the points out over a process
pool.  Workers rebuild everything from picklable descriptions
(architecture enum + kwargs + rate), so no simulator state crosses the
process boundary.
"""

from __future__ import annotations

import os
from multiprocessing import get_context
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.arch import Architecture, make_architecture
from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import PointResult, run_nuca_point, run_uniform_point

#: One unit of work: (architecture, rate, traffic kind).
WorkItem = Tuple[Architecture, float, str]


class SweepPointError(RuntimeError):
    """A sweep worker failed; names the work item so a bad point in a
    54-point sweep is identifiable without re-running serially."""

    def __init__(self, item: WorkItem, cause: str, attempts: int = 1) -> None:
        arch, rate, kind = item
        tries = f" after {attempts} attempts" if attempts > 1 else ""
        super().__init__(
            f"sweep point (arch={arch.value}, rate={rate:g}, kind={kind!r}) "
            f"failed{tries}: {cause}"
        )
        self.item = item
        self.cause = cause
        self.attempts = attempts

    def __reduce__(self):
        # Default exception pickling would replay __init__ with the
        # formatted message alone; rebuild from (item, cause, attempts)
        # so the error survives the pool's result pipe intact.
        return (SweepPointError, (self.item, self.cause, self.attempts))


def failure_to_error(failure) -> SweepPointError:
    """Convert a :class:`~repro.experiments.store.PointFailure` into the
    exception the raise-on-failure paths throw.  Callers that want the
    original exception chained do ``raise failure_to_error(f) from exc``
    so retry wrapping preserves ``__cause__``."""
    arch = _ARCH_BY_VALUE[failure.arch]
    return SweepPointError(
        (arch, failure.rate, failure.kind), failure.error, failure.attempts
    )


_ARCH_BY_VALUE = {arch.value: arch for arch in Architecture}


def _run_item(
    args: Tuple[
        WorkItem, ExperimentSettings, Optional[str], int,
        Optional[Dict[str, Any]], bool,
    ]
) -> Tuple[str, float, PointResult]:
    (item, settings, telemetry_dir, telemetry_interval, telemetry_trace,
     telemetry_attribution) = args
    arch, rate, kind = item
    try:
        config = make_architecture(arch)
        telemetry = None
        if telemetry_dir is not None:
            # Per-point metric timelines: one JSONL stream per sweep
            # point (plus an optional sampled lifecycle trace), named so
            # a 54-point sweep stays navigable.
            from repro.experiments.runner import point_telemetry_config

            telemetry = point_telemetry_config(
                telemetry_dir,
                f"{arch.value}_{kind}@{rate:g}",
                interval=telemetry_interval,
                trace=telemetry_trace,
                attribution=telemetry_attribution,
            )
        extra = {} if telemetry is None else {"telemetry": telemetry}
        if kind == "uniform":
            point = run_uniform_point(config, rate, settings, **extra)
        elif kind == "nuca":
            point = run_nuca_point(config, rate, settings, **extra)
        else:
            raise ValueError(f"unknown traffic kind {kind!r}")
    except SweepPointError:
        raise
    except Exception as exc:
        raise SweepPointError(item, f"{type(exc).__name__}: {exc}") from exc
    return config.name, rate, point


def parallel_sweep(
    archs: Sequence[Architecture],
    rates: Sequence[float],
    settings: Optional[ExperimentSettings] = None,
    kind: str = "uniform",
    processes: int = 2,
    telemetry_dir: Optional[str] = None,
    telemetry_interval: int = 100,
    *,
    telemetry_trace: Optional[Dict[str, Any]] = None,
    telemetry_attribution: bool = False,
    cache_dir: Optional[str] = None,
    resume: bool = False,
    retries: int = 0,
    point_timeout: Optional[float] = None,
    journal_path: Optional[str] = None,
    progress: bool = False,
    progress_jsonl: Optional[str] = None,
) -> Dict[str, List[Tuple[float, PointResult]]]:
    """Run ``archs x rates`` points over *processes* workers.

    Returns the same ``arch -> [(rate, PointResult)]`` structure as the
    serial harnesses, so the report/export helpers apply unchanged.

    ``telemetry_dir`` (opt-in) makes every worker stream windowed
    telemetry to ``<dir>/<arch>_<kind>@<rate>.jsonl``, sampling every
    ``telemetry_interval`` cycles — per-point timelines for offline
    comparison across the sweep.  ``telemetry_trace`` additionally
    writes a sampled lifecycle trace per point
    (``<dir>/<arch>_<kind>@<rate>.trace.json``); pass ``{}`` for the
    production defaults or override the sampling knobs (see
    :func:`~repro.experiments.runner.point_telemetry_config`).
    ``telemetry_attribution`` also attributes every stalled unit-cycle
    to a cause and writes per-point stall reports
    (``<dir>/<arch>_<kind>@<rate>.stalls.json``).  ``progress`` /
    ``progress_jsonl`` stream per-point progress (stderr lines / JSONL
    records) when delegating to the v2 engine; the v1 pool path has no
    per-point completion hooks, so they are ignored there.

    Passing any of ``cache_dir`` / ``resume`` / ``retries`` /
    ``point_timeout`` / ``journal_path`` delegates to the v2 engine
    (:func:`repro.experiments.sweep.run_sweep`): completed points are
    served from the content-addressed cache, progress is checkpointed to
    the journal, and failed points retry with backoff.  A point that
    still fails raises :class:`SweepPointError` (use ``run_sweep``
    directly with ``failure_mode="report"`` for partial results).
    """
    settings = settings or ExperimentSettings.from_env()
    if processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    if kind not in ("uniform", "nuca"):
        raise ValueError(f"unknown traffic kind {kind!r}")
    if (cache_dir is not None or resume or retries or point_timeout is not None
            or journal_path is not None):
        from repro.experiments.sweep import run_sweep, specs_for_grid

        outcome = run_sweep(
            specs_for_grid(archs, rates, kind=kind),
            settings,
            processes=processes,
            cache_dir=cache_dir,
            journal_path=journal_path,
            resume=resume,
            retries=retries,
            point_timeout=point_timeout,
            failure_mode="raise",
            telemetry_dir=telemetry_dir,
            telemetry_interval=telemetry_interval,
            telemetry_trace=telemetry_trace,
            telemetry_attribution=telemetry_attribution,
            progress=progress,
            progress_jsonl=progress_jsonl,
        )
        return outcome.series
    if telemetry_dir is not None:
        os.makedirs(telemetry_dir, exist_ok=True)
    items = [
        (
            (arch, rate, kind), settings, telemetry_dir,
            telemetry_interval, telemetry_trace, telemetry_attribution,
        )
        for arch in archs
        for rate in rates
    ]

    if processes == 1:
        results = [_run_item(item) for item in items]
    else:
        try:
            ctx = get_context("fork")  # workers inherit the loaded package
        except ValueError:
            # Windows / spawn-only platforms: workers re-import instead.
            ctx = get_context("spawn")
        with ctx.Pool(processes=processes) as pool:
            results = pool.map(_run_item, items)

    out: Dict[str, List[Tuple[float, PointResult]]] = {}
    for name, rate, point in results:
        out.setdefault(name, []).append((rate, point))
    for series in out.values():
        series.sort(key=lambda pair: pair[0])
    return out
