"""Parallel sweep execution over processes.

Full-scale sweeps (9 rates x 6 architectures x thousands of cycles) are
embarrassingly parallel; this module fans the points out over a process
pool.  Workers rebuild everything from picklable descriptions
(architecture enum + kwargs + rate), so no simulator state crosses the
process boundary.
"""

from __future__ import annotations

import os
from multiprocessing import get_context
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.arch import Architecture, make_architecture
from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import PointResult, run_nuca_point, run_uniform_point

#: One unit of work: (architecture, rate, traffic kind).
WorkItem = Tuple[Architecture, float, str]


class SweepPointError(RuntimeError):
    """A sweep worker failed; names the work item so a bad point in a
    54-point sweep is identifiable without re-running serially."""

    def __init__(self, item: WorkItem, cause: str) -> None:
        arch, rate, kind = item
        super().__init__(
            f"sweep point (arch={arch.value}, rate={rate:g}, kind={kind!r}) "
            f"failed: {cause}"
        )
        self.item = item
        self.cause = cause

    def __reduce__(self):
        # Default exception pickling would replay __init__ with the
        # formatted message alone; rebuild from (item, cause) so the
        # error survives the pool's result pipe intact.
        return (SweepPointError, (self.item, self.cause))


def _run_item(
    args: Tuple[WorkItem, ExperimentSettings, Optional[str], int]
) -> Tuple[str, float, PointResult]:
    item, settings, telemetry_dir, telemetry_interval = args
    arch, rate, kind = item
    try:
        config = make_architecture(arch)
        telemetry = None
        if telemetry_dir is not None:
            # Per-point metric timelines: one JSONL stream per sweep
            # point, named so a 54-point sweep stays navigable.
            from repro.telemetry.sampler import TelemetryConfig

            stem = f"{arch.value}_{kind}@{rate:g}"
            telemetry = TelemetryConfig(
                interval=telemetry_interval,
                metrics_path=os.path.join(telemetry_dir, stem + ".jsonl"),
            )
        extra = {} if telemetry is None else {"telemetry": telemetry}
        if kind == "uniform":
            point = run_uniform_point(config, rate, settings, **extra)
        elif kind == "nuca":
            point = run_nuca_point(config, rate, settings, **extra)
        else:
            raise ValueError(f"unknown traffic kind {kind!r}")
    except SweepPointError:
        raise
    except Exception as exc:
        raise SweepPointError(item, f"{type(exc).__name__}: {exc}") from exc
    return config.name, rate, point


def parallel_sweep(
    archs: Sequence[Architecture],
    rates: Sequence[float],
    settings: Optional[ExperimentSettings] = None,
    kind: str = "uniform",
    processes: int = 2,
    telemetry_dir: Optional[str] = None,
    telemetry_interval: int = 100,
) -> Dict[str, List[Tuple[float, PointResult]]]:
    """Run ``archs x rates`` points over *processes* workers.

    Returns the same ``arch -> [(rate, PointResult)]`` structure as the
    serial harnesses, so the report/export helpers apply unchanged.

    ``telemetry_dir`` (opt-in) makes every worker stream windowed
    telemetry to ``<dir>/<arch>_<kind>@<rate>.jsonl``, sampling every
    ``telemetry_interval`` cycles — per-point timelines for offline
    comparison across the sweep.
    """
    settings = settings or ExperimentSettings.from_env()
    if processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    if kind not in ("uniform", "nuca"):
        raise ValueError(f"unknown traffic kind {kind!r}")
    if telemetry_dir is not None:
        os.makedirs(telemetry_dir, exist_ok=True)
    items = [
        ((arch, rate, kind), settings, telemetry_dir, telemetry_interval)
        for arch in archs
        for rate in rates
    ]

    if processes == 1:
        results = [_run_item(item) for item in items]
    else:
        try:
            ctx = get_context("fork")  # workers inherit the loaded package
        except ValueError:
            # Windows / spawn-only platforms: workers re-import instead.
            ctx = get_context("spawn")
        with ctx.Pool(processes=processes) as pool:
            results = pool.map(_run_item, items)

    out: Dict[str, List[Tuple[float, PointResult]]] = {}
    for name, rate, point in results:
        out.setdefault(name, []).append((rate, point))
    for series in out.values():
        series.sort(key=lambda pair: pair[0])
    return out
