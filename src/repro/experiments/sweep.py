"""Resumable, cached, fault-tolerant sweep engine (v2).

The v1 engine (:func:`repro.experiments.parallel.parallel_sweep`)
recomputes every point and dies with the first worker; this one treats
a sweep as a batch job:

* **Cache** — every point is content-addressed
  (:func:`repro.experiments.store.point_key`); finished points are
  served from the :class:`~repro.experiments.store.ResultStore` without
  simulating, and the simulator's determinism makes the hit
  bit-identical to a re-run.
* **Journal + resume** — each completed point is checkpointed to a
  JSONL :class:`~repro.experiments.store.RunJournal` as it lands.  An
  interrupted sweep re-run with ``resume=True`` skips straight through
  its finished points (100% cache hits) and only simulates the gap.
* **Fault tolerance** — each point runs in its own worker process, so
  a crash (segfault, OOM-kill) is contained; a configurable
  ``point_timeout`` terminates hung workers; failed attempts retry with
  exponential backoff up to ``retries`` times; and with the default
  ``failure_mode="report"`` a dead point lands in a structured
  :class:`~repro.experiments.store.PointFailure` report instead of
  sinking its siblings.

Results come back as a :class:`~repro.experiments.store.SweepOutcome`
whose ``series`` ordering is deterministic (spec order, rates
ascending) regardless of completion order.
"""

from __future__ import annotations

import json
import os
import sys
import time
import traceback
from multiprocessing import get_context
from typing import Any, Callable, Dict, IO, List, Optional, Sequence, Tuple

from repro.core.arch import Architecture, ArchitectureConfig, make_architecture
from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import PointResult, run_point_spec
from repro.experiments.store import (
    PointFailure,
    PointSpec,
    ResultStore,
    RunJournal,
    SweepOutcome,
    SweepStats,
    point_key,
)

#: Worker signature tests can substitute to inject faults.
WorkerFn = Callable[[PointSpec, ExperimentSettings], PointResult]

#: Scheduler poll interval (s); short enough that sub-second
#: point timeouts in the crash-injection tests are honoured.
_POLL_S = 0.01


def specs_for_grid(
    archs: Sequence[Any],
    rates: Sequence[float],
    kind: str = "uniform",
    short_flit_fraction: float = 0.0,
    shutdown_enabled: bool = False,
    seed: Optional[int] = None,
    **resilience: object,
) -> List[PointSpec]:
    """The ``archs x rates`` grid as PointSpecs (arch-major order).

    Each entry of *archs* is either an :class:`Architecture` enum member
    (expanded through :func:`make_architecture` with defaults) or an
    already-built :class:`ArchitectureConfig` — so custom fabrics
    (non-default ring sizes, irregular graphs) sweep through the same
    grid builder and cache keying as the paper's six designs.

    Extra keyword arguments (``fault_random_links``, ``fault_seed``,
    ``fault_mode``, ``variation_sigma``, ``variation_seed``, ...) pass
    straight through to every :class:`PointSpec`, so resilience sweeps
    reuse the same grid builder and get the same cache keying.
    """
    return [
        PointSpec(
            config=(
                arch
                if isinstance(arch, ArchitectureConfig)
                else make_architecture(arch)
            ),
            kind=kind,
            rate=rate,
            short_flit_fraction=short_flit_fraction,
            shutdown_enabled=shutdown_enabled,
            seed=seed,
            **resilience,
        )
        for arch in archs
        for rate in rates
    ]


class _Task:
    """Mutable scheduling state for one pending point."""

    __slots__ = (
        "index", "spec", "key", "attempts", "not_before",
        "failure_kind", "error", "tb",
    )

    def __init__(self, index: int, spec: PointSpec, key: str) -> None:
        self.index = index
        self.spec = spec
        self.key = key
        self.attempts = 0
        self.not_before = 0.0
        self.failure_kind = ""
        self.error = ""
        self.tb = ""


class _Running:
    """A live worker process executing one task."""

    __slots__ = ("task", "process", "conn", "deadline")

    def __init__(self, task: _Task, process, conn, deadline: Optional[float]):
        self.task = task
        self.process = process
        self.conn = conn
        self.deadline = deadline


def _child_main(conn, spec, settings, telemetry_dir, telemetry_interval,
                telemetry_trace, telemetry_attribution, worker_fn) -> None:
    """Worker entry point: run one spec, ship the outcome over *conn*.

    Every exception is reported as data (message + traceback text) so
    the parent can retry or fold it into the failure report; only a
    process-level death (signal, ``os._exit``) leaves the pipe empty.
    """
    try:
        if worker_fn is not None:
            point = worker_fn(spec, settings)
        else:
            telemetry = None
            if telemetry_dir is not None:
                from repro.experiments.runner import point_telemetry_config

                telemetry = point_telemetry_config(
                    telemetry_dir,
                    f"{spec.arch_name}_{spec.kind}@{spec.rate:g}",
                    interval=telemetry_interval,
                    trace=telemetry_trace,
                    attribution=telemetry_attribution,
                )
            point = run_point_spec(spec, settings, telemetry=telemetry)
        conn.send(("ok", point))
    except BaseException as exc:  # noqa: BLE001 - reported, not swallowed
        conn.send(
            ("error", f"{type(exc).__name__}: {exc}", traceback.format_exc())
        )
    finally:
        conn.close()


class ProgressEmitter:
    """Structured per-point sweep progress.

    Emits one human-readable line per point event (cache hit, done,
    retry, failed) to *stream* (stderr by default, where it cannot
    corrupt piped stdout output), and optionally mirrors each event as
    a JSON record to *jsonl_path* for machine consumers (CI dashboards,
    wrapper scripts polling a long sweep).  The ETA is a simple
    rate-based extrapolation over finished points; cache hits complete
    in microseconds, so early all-hit resumes show optimistic ETAs that
    correct themselves as soon as real points land.
    """

    def __init__(
        self,
        total: int,
        stream: Optional[IO[str]] = None,
        jsonl_path: Optional[str] = None,
    ) -> None:
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.done = 0
        self.failed = 0
        self.retries = 0
        self.cache_hits = 0
        self._start = time.monotonic()
        self._jsonl: Optional[IO[str]] = None
        if jsonl_path is not None:
            parent = os.path.dirname(jsonl_path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._jsonl = open(jsonl_path, "w", encoding="utf-8")

    def point(self, task: "_Task", status: str, cached: bool = False) -> None:
        if status == "done":
            self.done += 1
            if cached:
                self.cache_hits += 1
        elif status == "failed":
            self.failed += 1
        elif status == "retry":
            self.retries += 1
        finished = self.done + self.failed
        elapsed = time.monotonic() - self._start
        eta = (
            elapsed / finished * (self.total - finished)
            if finished
            else None
        )
        label = f"{task.spec.arch_name} {task.spec.kind}@{task.spec.rate:g}"
        parts = [
            f"[sweep {finished}/{self.total}]",
            f"{status:<6}",
            f"{label:<24}",
            f"elapsed {elapsed:6.1f}s",
        ]
        if eta is not None:
            parts.append(f"eta {eta:6.1f}s")
        tallies = []
        if self.cache_hits:
            tallies.append(f"{self.cache_hits} cached")
        if self.retries:
            tallies.append(f"{self.retries} retries")
        if self.failed:
            tallies.append(f"{self.failed} failed")
        if tallies:
            parts.append("(" + ", ".join(tallies) + ")")
        print(" ".join(parts), file=self.stream, flush=True)
        if self._jsonl is not None:
            self._jsonl.write(json.dumps({
                "type": "progress",
                "status": status,
                "arch": task.spec.arch_name,
                "kind": task.spec.kind,
                "rate": task.spec.rate,
                "attempts": task.attempts,
                "cached": cached,
                "done": self.done,
                "failed": self.failed,
                "retries": self.retries,
                "cache_hits": self.cache_hits,
                "total": self.total,
                "elapsed_s": round(elapsed, 3),
                "eta_s": round(eta, 3) if eta is not None else None,
            }) + "\n")
            self._jsonl.flush()

    def close(self) -> None:
        if self._jsonl is not None:
            self._jsonl.close()
            self._jsonl = None


def _mp_context():
    try:
        return get_context("fork")  # workers inherit the loaded package
    except ValueError:  # pragma: no cover - Windows/spawn-only platforms
        return get_context("spawn")


def _journal_point(
    journal: Optional[RunJournal],
    task: _Task,
    status: str,
    cached: bool = False,
    progress: Optional[ProgressEmitter] = None,
) -> None:
    # Every per-point event (cache hit, done, retry, failed) funnels
    # through here, so this is also where progress reporting hooks in.
    if progress is not None:
        progress.point(task, status, cached=cached)
    if journal is None:
        return
    record = {
        "type": "point",
        "status": status,
        "key": task.key,
        "arch": task.spec.arch_name,
        "kind": task.spec.kind,
        "rate": task.spec.rate,
        "attempts": task.attempts,
        "cached": cached,
    }
    if status == "failed":
        record["failure_kind"] = task.failure_kind
        record["error"] = task.error
    journal.append(record)


def run_sweep(
    specs: Sequence[PointSpec],
    settings: Optional[ExperimentSettings] = None,
    *,
    processes: int = 2,
    cache_dir: Optional[str] = None,
    journal_path: Optional[str] = None,
    resume: bool = False,
    retries: int = 0,
    backoff_s: float = 0.5,
    backoff_factor: float = 2.0,
    point_timeout: Optional[float] = None,
    failure_mode: str = "report",
    telemetry_dir: Optional[str] = None,
    telemetry_interval: int = 100,
    telemetry_trace: Optional[Dict[str, Any]] = None,
    telemetry_attribution: bool = False,
    progress: bool = False,
    progress_stream: Optional[IO[str]] = None,
    progress_jsonl: Optional[str] = None,
    worker_fn: Optional[WorkerFn] = None,
) -> SweepOutcome:
    """Run *specs*, caching, journaling, and surviving worker failures.

    ``processes >= 1`` runs each point in its own worker process (the
    only mode where ``point_timeout`` and crash containment are
    enforceable); ``processes=0`` runs points inline in this process —
    handy under a debugger — where a timeout cannot be enforced and is
    rejected.  ``failure_mode`` is ``"report"`` (collect
    :class:`PointFailure`\\ s, return partial results) or ``"raise"``
    (raise :class:`~repro.experiments.parallel.SweepPointError` for the
    first failed point, preserving the causing exception via
    ``raise ... from`` when it happened in-process).

    ``resume=True`` requires ``cache_dir`` (the cache is what serves
    previously finished points) and appends to an existing journal
    instead of truncating it.

    ``telemetry_trace`` (with ``telemetry_dir``) additionally writes a
    sampled lifecycle trace per point (``<dir>/<stem>.trace.json``);
    pass ``{}`` for the production defaults or override the knobs (see
    :func:`~repro.experiments.runner.point_telemetry_config`).
    ``telemetry_attribution`` (with ``telemetry_dir``) turns on stall
    attribution per point and writes each point's stall report to
    ``<dir>/<stem>.stalls.json``.

    ``progress=True`` prints one line per point event (cache hit, done,
    retry, failed) with done/total, failure/retry/cache tallies, and a
    rate-based ETA to ``progress_stream`` (stderr by default);
    ``progress_jsonl`` mirrors the same events as machine-readable
    JSONL records, independent of ``progress``.
    """
    settings = settings or ExperimentSettings.from_env()
    if processes < 0:
        raise ValueError(f"processes must be >= 0, got {processes}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if point_timeout is not None and point_timeout <= 0:
        raise ValueError(f"point_timeout must be positive, got {point_timeout}")
    if point_timeout is not None and processes == 0:
        raise ValueError("point_timeout requires worker processes (processes >= 1)")
    if failure_mode not in ("report", "raise"):
        raise ValueError(f"unknown failure_mode {failure_mode!r}")
    if resume and cache_dir is None:
        raise ValueError("resume=True requires cache_dir (it serves finished points)")
    if telemetry_dir is not None:
        os.makedirs(telemetry_dir, exist_ok=True)

    store = ResultStore(cache_dir) if cache_dir is not None else None
    journal = (
        RunJournal(journal_path, append=resume)
        if journal_path is not None
        else None
    )
    emitter = (
        ProgressEmitter(
            len(specs), stream=progress_stream, jsonl_path=progress_jsonl
        )
        if progress or progress_jsonl is not None
        else None
    )

    stats = SweepStats(points=len(specs))
    results: Dict[int, PointResult] = {}
    failures: List[PointFailure] = []
    tasks = [
        _Task(i, spec, point_key(spec, settings)) for i, spec in enumerate(specs)
    ]

    try:
        if journal is not None:
            journal.append({
                "type": "run-start",
                "points": len(specs),
                "resume": resume,
                "retries": retries,
                "processes": processes,
            })

        # Phase 1: probe the cache; hits never reach a worker.
        probe_start = time.monotonic()
        pending: List[_Task] = []
        for task in tasks:
            hit = store.get(task.key) if store is not None else None
            if hit is not None:
                results[task.index] = hit
                stats.cache_hits += 1
                _journal_point(
                    journal, task, "done", cached=True, progress=emitter
                )
            else:
                pending.append(task)
        stats.phase_wall_s["probe"] = time.monotonic() - probe_start

        # Phase 2: execute the misses.
        run_start = time.monotonic()
        if pending:
            if processes == 0:
                _run_inline(
                    pending, settings, retries, backoff_s, backoff_factor,
                    failure_mode, worker_fn, store, journal, stats,
                    results, failures, emitter,
                )
            else:
                _run_pooled(
                    pending, settings, processes, retries, backoff_s,
                    backoff_factor, point_timeout, failure_mode, worker_fn,
                    telemetry_dir, telemetry_interval, telemetry_trace,
                    telemetry_attribution, store, journal, stats, results,
                    failures, emitter,
                )
        stats.phase_wall_s["run"] = time.monotonic() - run_start

        if journal is not None:
            journal.append({
                "type": "run-end",
                "completed": len(results),
                "failed": len(failures),
                "stats": stats.to_json(),
            })
    finally:
        if journal is not None:
            journal.close()
        if emitter is not None:
            emitter.close()

    # Deterministic assembly: specs' arch order, rates ascending —
    # completion order (which varies run to run) never shows through.
    series: Dict[str, List[Tuple[float, PointResult]]] = {}
    for task in tasks:
        point = results.get(task.index)
        if point is not None:
            series.setdefault(task.spec.arch_name, []).append(
                (task.spec.rate, point)
            )
    for points in series.values():
        points.sort(key=lambda pair: pair[0])
    failures.sort(key=lambda f: (f.arch, f.kind, f.rate))

    outcome = SweepOutcome(
        series=series,
        failures=failures,
        stats=stats,
        journal_path=journal_path,
    )
    if failure_mode == "raise":
        outcome.raise_if_failed()
    return outcome


def _backoff_delay(backoff_s: float, backoff_factor: float, attempts: int) -> float:
    return backoff_s * (backoff_factor ** max(attempts - 1, 0))


def _record_failure(
    task: _Task,
    failure_mode: str,
    stats: SweepStats,
    failures: List[PointFailure],
    journal: Optional[RunJournal],
    cause: Optional[BaseException] = None,
    progress: Optional[ProgressEmitter] = None,
) -> None:
    """Retries exhausted: report the point, or raise on the spot."""
    stats.failed_points += 1
    _journal_point(journal, task, "failed", progress=progress)
    failure = PointFailure(
        arch=task.spec.arch_name,
        kind=task.spec.kind,
        rate=task.spec.rate,
        key=task.key,
        attempts=task.attempts,
        failure_kind=task.failure_kind,
        error=task.error,
        traceback=task.tb,
    )
    if failure_mode == "raise":
        from repro.experiments.parallel import failure_to_error

        # ``raise ... from`` keeps the causing exception on __cause__
        # through the retry wrapping (cause is None when the worker
        # died in another process — its traceback text still rides
        # along inside the failure).
        raise failure_to_error(failure) from cause
    failures.append(failure)


def _handle_attempt_failure(
    task: _Task,
    retries: int,
    backoff_s: float,
    backoff_factor: float,
    failure_mode: str,
    stats: SweepStats,
    failures: List[PointFailure],
    journal: Optional[RunJournal],
    waiting: List[_Task],
    cause: Optional[BaseException] = None,
    progress: Optional[ProgressEmitter] = None,
) -> None:
    if task.failure_kind == "timeout":
        stats.timeouts += 1
    elif task.failure_kind == "crash":
        stats.crashes += 1
    else:
        stats.errors += 1
    if task.attempts <= retries:
        stats.retried_attempts += 1
        task.not_before = time.monotonic() + _backoff_delay(
            backoff_s, backoff_factor, task.attempts
        )
        _journal_point(journal, task, "retry", progress=progress)
        waiting.append(task)
    else:
        _record_failure(
            task, failure_mode, stats, failures, journal, cause,
            progress=progress,
        )


def _run_inline(
    pending: List[_Task],
    settings: ExperimentSettings,
    retries: int,
    backoff_s: float,
    backoff_factor: float,
    failure_mode: str,
    worker_fn: Optional[WorkerFn],
    store: Optional[ResultStore],
    journal: Optional[RunJournal],
    stats: SweepStats,
    results: Dict[int, PointResult],
    failures: List[PointFailure],
    progress: Optional[ProgressEmitter] = None,
) -> None:
    """Sequential in-process execution (``processes=0``)."""
    run = worker_fn if worker_fn is not None else run_point_spec
    for task in pending:
        while True:
            task.attempts += 1
            try:
                point = run(task.spec, settings)
            except Exception as exc:
                task.failure_kind = "error"
                task.error = f"{type(exc).__name__}: {exc}"
                task.tb = traceback.format_exc()
                if task.attempts <= retries:
                    stats.errors += 1
                    stats.retried_attempts += 1
                    _journal_point(journal, task, "retry", progress=progress)
                    time.sleep(
                        _backoff_delay(backoff_s, backoff_factor, task.attempts)
                    )
                    continue
                stats.errors += 1
                _record_failure(
                    task, failure_mode, stats, failures, journal, cause=exc,
                    progress=progress,
                )
                break
            results[task.index] = point
            stats.executed += 1
            if store is not None:
                store.put(task.key, point)
            _journal_point(journal, task, "done", progress=progress)
            break


def _run_pooled(
    pending: List[_Task],
    settings: ExperimentSettings,
    processes: int,
    retries: int,
    backoff_s: float,
    backoff_factor: float,
    point_timeout: Optional[float],
    failure_mode: str,
    worker_fn: Optional[WorkerFn],
    telemetry_dir: Optional[str],
    telemetry_interval: int,
    telemetry_trace: Optional[Dict[str, Any]],
    telemetry_attribution: bool,
    store: Optional[ResultStore],
    journal: Optional[RunJournal],
    stats: SweepStats,
    results: Dict[int, PointResult],
    failures: List[PointFailure],
    progress: Optional[ProgressEmitter] = None,
) -> None:
    """One process per point, at most *processes* live at once.

    A dedicated process per point (rather than a long-lived pool) is
    what makes the robustness guarantees simple: a hung worker can be
    ``terminate()``d without poisoning a shared pool, and a crashed one
    takes nothing down with it.  Points run for seconds, so the
    per-process overhead is noise.
    """
    ctx = _mp_context()
    queue: List[_Task] = list(pending)  # FIFO, spec order
    waiting: List[_Task] = []  # backoff until not_before
    running: List[_Running] = []

    def launch(task: _Task) -> None:
        task.attempts += 1
        recv, send = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_child_main,
            args=(send, task.spec, settings, telemetry_dir,
                  telemetry_interval, telemetry_trace,
                  telemetry_attribution, worker_fn),
        )
        process.start()
        send.close()  # child's end; parent sees EOF when the child dies
        deadline = (
            time.monotonic() + point_timeout
            if point_timeout is not None
            else None
        )
        running.append(_Running(task, process, recv, deadline))

    def finish(run: _Running, outcome: Optional[Tuple]) -> None:
        """Fold one worker's exit (message or death) back into the state."""
        task = run.task
        run.conn.close()
        if outcome is not None and outcome[0] == "ok":
            point = outcome[1]
            results[task.index] = point
            stats.executed += 1
            if store is not None:
                store.put(task.key, point)
            _journal_point(journal, task, "done", progress=progress)
            return
        if outcome is not None:  # ("error", message, traceback)
            task.failure_kind = "error"
            task.error = outcome[1]
            task.tb = outcome[2]
        else:
            task.failure_kind = "crash"
            task.error = (
                f"worker process died with exit code {run.process.exitcode}"
            )
            task.tb = ""
        _handle_attempt_failure(
            task, retries, backoff_s, backoff_factor, failure_mode,
            stats, failures, journal, waiting, progress=progress,
        )

    try:
        while queue or waiting or running:
            now = time.monotonic()

            # Backoff expiry: re-queue tasks whose wait is over.
            still_waiting = [t for t in waiting if t.not_before > now]
            for task in waiting:
                if task.not_before <= now:
                    queue.append(task)
            waiting[:] = still_waiting

            while queue and len(running) < processes:
                launch(queue.pop(0))

            progressed = False
            still_running: List[_Running] = []
            for run in running:
                # Message first: a finished worker may have exited
                # already but its result is still buffered in the pipe.
                if run.conn.poll():
                    try:
                        outcome = run.conn.recv()
                    except (EOFError, OSError):
                        outcome = None
                    run.process.join()
                    finish(run, outcome)
                    progressed = True
                elif not run.process.is_alive():
                    run.process.join()
                    # Final drain: the message can land between the
                    # poll above and the liveness check.
                    outcome = None
                    if run.conn.poll():
                        try:
                            outcome = run.conn.recv()
                        except (EOFError, OSError):
                            outcome = None
                    finish(run, outcome)
                    progressed = True
                elif run.deadline is not None and now > run.deadline:
                    run.process.terminate()
                    run.process.join()
                    run.conn.close()
                    run.task.failure_kind = "timeout"
                    run.task.error = (
                        f"point exceeded timeout of {point_timeout:g}s "
                        f"(attempt {run.task.attempts})"
                    )
                    run.task.tb = ""
                    _handle_attempt_failure(
                        run.task, retries, backoff_s, backoff_factor,
                        failure_mode, stats, failures, journal, waiting,
                        progress=progress,
                    )
                    progressed = True
                else:
                    still_running.append(run)
            running[:] = still_running

            if not progressed and (running or waiting):
                time.sleep(_POLL_S)
    finally:
        # failure_mode="raise" (or Ctrl-C) can exit mid-flight; never
        # leave orphaned simulator processes behind.
        for run in running:
            if run.process.is_alive():
                run.process.terminate()
            run.process.join()
            run.conn.close()
