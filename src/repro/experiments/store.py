"""Content-addressed result store, run journal, and sweep bookkeeping.

Reproducing the paper's sweeps means re-running hundreds of
(architecture x traffic x rate) points; this module makes those runs
cheap to repeat and safe to interrupt:

* :func:`point_key` — a canonical, cross-process-stable hash of the
  *full* point configuration (architecture geometry, traffic kind and
  rate, pipeline options, seed, cycle budgets).  Two processes — or two
  machines — asking for the same point compute the same key; any single
  field changing produces a different key.
* :class:`ResultStore` — an on-disk cache mapping keys to serialised
  :class:`~repro.experiments.runner.PointResult`\\ s.  Writes are atomic
  (tmp + rename) so a killed sweep never leaves a truncated entry;
  corrupt or unreadable entries read as misses, never as errors.
* :class:`RunJournal` — an append-only JSONL log that checkpoints every
  completed point.  Each record is flushed as it happens, so a crashed
  or Ctrl-C'd sweep leaves an exact account of what finished; the sweep
  engine's ``--resume`` replays it against the cache.
* :class:`SweepStats` / :class:`PointFailure` / :class:`SweepOutcome` —
  the structured result of a fault-tolerant sweep: partial results,
  per-point failure reports, and cache/retry counters formatted in the
  same phase style as the hot-loop profiler.

The simulator's determinism (``tests/test_determinism.py``) is what
makes caching *sound*: a cache hit is bit-identical to a re-run, which
``tests/test_sweep_engine.py`` asserts across all six architectures.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, IO, List, Optional, Tuple, Union

from repro.core.arch import ArchitectureConfig
from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import PointResult, run_point_spec
from repro.noc.simulator import SimulationResult
from repro.noc.stats import EventCounts
from repro.power.energy import LayerPowerReport, PowerReport

#: Bump when the serialised result layout or the key payload changes;
#: part of every key, so stale cache entries can never be misread.
#: v2: layer-resolved event histograms, node_layer_activity, layer_power.
#: v3: fault-injection and process-variation spec fields; drop counters
#: and fault summary in the serialised sim result.
#: v4: substrate-fabric config fields (extra_nodes, topology_file,
#: topology_digest) and the RING/CHIPLET/IRREG architectures.
SCHEMA_VERSION = 4


# ---------------------------------------------------------------------------
# Point specification + canonical keys
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PointSpec:
    """A fully specified, picklable sweep point.

    Carries the resolved :class:`ArchitectureConfig` (not just the enum)
    so ablation variants and custom geometries key distinctly.  Trace
    replays are excluded on purpose: their input is a generated record
    list, not a compact config, so they are not cacheable by key.
    """

    config: ArchitectureConfig
    #: Traffic kind: ``"uniform"`` or ``"nuca"``.
    kind: str
    #: Injection rate (flits/node/cycle) or NUCA request rate.
    rate: float
    short_flit_fraction: float = 0.0
    shutdown_enabled: bool = False
    #: ``None`` means "use ``settings.seed``" (the effective seed is what
    #: gets hashed, so the two spellings key identically).
    seed: Optional[int] = None
    #: Explicit link kills as ``(cycle, src, dst)`` triples.
    fault_links: Tuple[Tuple[int, int, int], ...] = ()
    #: Stuck VCs as ``(cycle, node, port, vc)`` quadruples.
    fault_vcs: Tuple[Tuple[int, int, int, int], ...] = ()
    #: Additionally kill this many seeded-random channels.
    fault_random_links: int = 0
    #: RNG seed for the random link sample.
    fault_seed: int = 0
    #: Cycle the random link kills apply at.
    fault_cycle: int = 0
    #: ``"hard"`` (credit-starving) or ``"drain"`` (routing-level fence).
    fault_mode: str = "hard"
    #: Process-variation sigma (0 = no variation model attached).
    variation_sigma: float = 0.0
    #: Process-variation sample seed.
    variation_seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("uniform", "nuca"):
            raise ValueError(f"unknown traffic kind {self.kind!r}")
        if self.fault_mode not in ("hard", "drain"):
            raise ValueError(f"unknown fault mode {self.fault_mode!r}")
        if self.fault_random_links < 0:
            raise ValueError("fault_random_links must be >= 0")
        if self.variation_sigma < 0:
            raise ValueError("variation_sigma must be >= 0")

    @property
    def has_faults(self) -> bool:
        return bool(
            self.fault_links or self.fault_vcs or self.fault_random_links
        )

    @property
    def arch_name(self) -> str:
        return self.config.name

    def effective_seed(self, settings: ExperimentSettings) -> int:
        return settings.seed if self.seed is None else self.seed

    def describe(self) -> str:
        return f"{self.arch_name} {self.kind}@{self.rate:g}"


def _plain(value: Any) -> Any:
    """Reduce *value* to canonical-JSON-ready primitives.

    Enums become their values, dataclasses become sorted dicts, tuples
    become lists, and dict keys become strings — deterministically, with
    no dependence on insertion order or ``PYTHONHASHSEED``.
    """
    if isinstance(value, enum.Enum):
        return _plain(value.value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _plain(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot canonicalise {type(value).__name__}: {value!r}")


def canonical_json(payload: Any) -> str:
    """Serialise *payload* to the canonical form the keys hash.

    ``sort_keys`` removes dict-order dependence; tight separators remove
    whitespace dependence; ``allow_nan=False`` keeps the representation
    portable.  Python's ``repr``-based float formatting is exact and
    stable across platforms, so equal floats always produce equal text.
    """
    return json.dumps(
        _plain(payload), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def key_payload(spec: PointSpec, settings: ExperimentSettings) -> Dict[str, Any]:
    """The exact fields a point's identity comprises (pre-hash)."""
    return {
        "schema": SCHEMA_VERSION,
        "config": spec.config,
        "kind": spec.kind,
        "rate": spec.rate,
        "short_flit_fraction": spec.short_flit_fraction,
        "shutdown_enabled": spec.shutdown_enabled,
        "seed": spec.effective_seed(settings),
        "warmup_cycles": settings.warmup_cycles,
        "measure_cycles": settings.measure_cycles,
        "drain_cycles": settings.drain_cycles,
        "fault_links": spec.fault_links,
        "fault_vcs": spec.fault_vcs,
        "fault_random_links": spec.fault_random_links,
        "fault_seed": spec.fault_seed,
        "fault_cycle": spec.fault_cycle,
        "fault_mode": spec.fault_mode,
        "variation_sigma": spec.variation_sigma,
        "variation_seed": spec.variation_seed,
    }


def point_key(spec: PointSpec, settings: ExperimentSettings) -> str:
    """Content-address of one sweep point: sha256 of the canonical payload."""
    text = canonical_json(key_payload(spec, settings))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# PointResult (de)serialisation
# ---------------------------------------------------------------------------


def _events_to_json(events: EventCounts) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for f in dataclasses.fields(events):
        value = getattr(events, f.name)
        if f.name == "channel_flits":
            # Tuple keys don't survive JSON; store sorted [src, dst, n].
            out[f.name] = [
                [src, dst, n] for (src, dst), n in sorted(value.items())
            ]
        else:
            out[f.name] = value
    return out


def _events_from_json(data: Dict[str, Any]) -> EventCounts:
    events = EventCounts()
    for f in dataclasses.fields(events):
        if f.name not in data:
            continue
        value = data[f.name]
        if f.name == "channel_flits":
            value = {(src, dst): n for src, dst, n in value}
        elif f.name.endswith("_by_layers"):
            # JSON stringifies the int active-layer-count keys.
            value = {int(k): v for k, v in value.items()}
        setattr(events, f.name, value)
    return events


def point_result_to_json(point: PointResult) -> Dict[str, Any]:
    """Serialise a PointResult to JSON primitives, losslessly.

    Observability attachments (``profile``/``sanity``/``telemetry``) are
    host-run artefacts, not simulation outputs, and are not cached; a
    deserialised result carries ``None`` for all three.
    """
    sim = point.sim
    return {
        "schema": SCHEMA_VERSION,
        "arch": point.arch,
        "label": point.label,
        "node_activity": list(point.node_activity),
        "sim": {
            "cycles": sim.cycles,
            "avg_latency": sim.avg_latency,
            "avg_hops": sim.avg_hops,
            "packets_measured": sim.packets_measured,
            "packets_delivered": sim.packets_delivered,
            "flits_delivered": sim.flits_delivered,
            "throughput": sim.throughput,
            "accepted_throughput": sim.accepted_throughput,
            "events": _events_to_json(sim.events),
            "window_cycles": sim.window_cycles,
            "saturated": sim.saturated,
            "avg_latency_by_class": dict(sim.avg_latency_by_class),
            "activity_windows": [list(w) for w in sim.activity_windows],
            "activity_window_cycles": list(sim.activity_window_cycles),
            "latency_p50": sim.latency_p50,
            "latency_p95": sim.latency_p95,
            "latency_p99": sim.latency_p99,
            "packets_dropped": sim.packets_dropped,
            "flits_dropped": sim.flits_dropped,
            "fault_summary": sim.fault_summary,
        },
        "power": {
            "name": point.power.name,
            "dynamic_w": point.power.dynamic_w,
            "leakage_w": point.power.leakage_w,
            "breakdown_w": dict(point.power.breakdown_w),
        },
        "node_layer_activity": [
            list(shares) for shares in point.node_layer_activity
        ],
        "layer_power": {
            "name": point.layer_power.name,
            "layer_dynamic_w": list(point.layer_power.layer_dynamic_w),
            "leakage_w": point.layer_power.leakage_w,
            "all_layers_on_dynamic_w": (
                point.layer_power.all_layers_on_dynamic_w
            ),
            "breakdown_w": dict(point.layer_power.breakdown_w),
        },
    }


def point_result_from_json(data: Dict[str, Any]) -> PointResult:
    """Rebuild a PointResult from :func:`point_result_to_json` output."""
    sim_data = dict(data["sim"])
    sim_data["events"] = _events_from_json(sim_data["events"])
    sim = SimulationResult(**sim_data)
    power = PowerReport(**data["power"])
    layer_data = dict(data["layer_power"])
    layer_data["layer_dynamic_w"] = tuple(layer_data["layer_dynamic_w"])
    layer_power = LayerPowerReport(**layer_data)
    return PointResult(
        arch=data["arch"],
        label=data["label"],
        sim=sim,
        power=power,
        node_activity=list(data["node_activity"]),
        node_layer_activity=[
            list(shares) for shares in data["node_layer_activity"]
        ],
        layer_power=layer_power,
    )


# ---------------------------------------------------------------------------
# On-disk store
# ---------------------------------------------------------------------------


class ResultStore:
    """Content-addressed on-disk cache of completed sweep points.

    Layout: ``<root>/<key[:2]>/<key>.json`` (two-level fan-out keeps
    directories small on thousand-point sweeps).  Safe for concurrent
    writers: entries are written to a temp file and atomically renamed,
    and the content is a pure function of the key, so a same-key race
    just writes the same bytes twice.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Probe counters for the current process (not persisted).
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[PointResult]:
        """The cached result for *key*, or ``None``.

        Any read problem — missing file, truncated write from a killed
        process, schema drift — degrades to a miss so the point simply
        re-runs.
        """
        path = self.path_for(key)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            if data.get("schema") != SCHEMA_VERSION:
                self.misses += 1
                return None
            result = point_result_from_json(data)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, point: PointResult) -> Path:
        """Atomically persist *point* under *key*."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(point_result_to_json(point), sort_keys=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))


def cached_point_run(
    store: Optional[ResultStore],
    spec: PointSpec,
    settings: ExperimentSettings,
) -> PointResult:
    """Run *spec* through *store*: serve a hit, else simulate and fill.

    With ``store=None`` this is exactly ``run_point_spec`` — the figure
    harnesses call it unconditionally so caching is a parameter, not a
    code path.
    """
    if store is None:
        return run_point_spec(spec, settings)
    key = point_key(spec, settings)
    hit = store.get(key)
    if hit is not None:
        return hit
    point = run_point_spec(spec, settings)
    store.put(key, point)
    return point


# ---------------------------------------------------------------------------
# Run journal
# ---------------------------------------------------------------------------


class RunJournal:
    """Append-only JSONL checkpoint log for a sweep run.

    One line per event, flushed and fsync'd as written, so the journal
    survives ``kill -9`` with at most the in-flight line lost.  A resumed
    run appends to the same file; the history of every attempt stays in
    one place (CI uploads it as an artifact).
    """

    def __init__(self, path: Union[str, Path], append: bool = False) -> None:
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[IO[str]] = open(
            self.path, "a" if append else "w", encoding="utf-8"
        )

    def append(self, record: Dict[str, Any]) -> None:
        if self._handle is None:  # pragma: no cover - defensive
            raise ValueError("journal is closed")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @staticmethod
    def load(path: Union[str, Path]) -> List[Dict[str, Any]]:
        """Parse a journal file, skipping any torn trailing line."""
        records: List[Dict[str, Any]] = []
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError:
            return records
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                continue  # torn write from a killed process
        return records

    @staticmethod
    def completed_keys(path: Union[str, Path]) -> List[str]:
        """Keys of points the journal records as done (cache-backed)."""
        return [
            r["key"]
            for r in RunJournal.load(path)
            if r.get("type") == "point" and r.get("status") == "done"
        ]


# ---------------------------------------------------------------------------
# Sweep outcome structures
# ---------------------------------------------------------------------------


@dataclass
class SweepStats:
    """Cache/retry/failure counters for one sweep run.

    Mirrors the profiler's phase pattern: scalar counters plus a
    ``phase_wall_s`` dict, rendered by :meth:`format` in the same style
    as :class:`~repro.noc.profiling.ProfileSnapshot`.
    """

    points: int = 0
    cache_hits: int = 0
    executed: int = 0
    #: Attempts beyond the first, summed over points (the retry bill).
    retried_attempts: int = 0
    timeouts: int = 0
    crashes: int = 0
    errors: int = 0
    failed_points: int = 0
    #: Wall seconds by engine phase: ``probe`` (cache lookups), ``run``
    #: (worker execution, incl. scheduling), ``backoff`` (retry waits).
    phase_wall_s: Dict[str, float] = field(default_factory=dict)

    @property
    def recomputed(self) -> int:
        """Points that actually ran (the CI resume check pins this to 0)."""
        return self.executed

    def to_json(self) -> Dict[str, Any]:
        return {
            "points": self.points,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "retried_attempts": self.retried_attempts,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "errors": self.errors,
            "failed_points": self.failed_points,
            "phase_wall_s": dict(self.phase_wall_s),
        }

    def format(self) -> str:
        """Human-readable block for CLI output."""
        lines = [
            f"points            : {self.points}",
            f"cache hits        : {self.cache_hits}",
            f"executed          : {self.executed}",
            f"retried attempts  : {self.retried_attempts}",
            f"failed points     : {self.failed_points} "
            f"(timeouts {self.timeouts}, crashes {self.crashes}, "
            f"errors {self.errors})",
        ]
        for phase, wall in sorted(self.phase_wall_s.items()):
            lines.append(f"{phase:<18}: {wall:.3f} s")
        return "\n".join(lines)


@dataclass(frozen=True)
class PointFailure:
    """One sweep point that exhausted its retry budget."""

    arch: str
    kind: str
    rate: float
    key: str
    #: Total attempts made (1 + retries).
    attempts: int
    #: ``"error"`` (worker raised), ``"timeout"``, or ``"crash"``
    #: (worker process died without reporting).
    failure_kind: str
    #: Message of the final attempt's failure.
    error: str
    #: Traceback text of the final attempt, when one was captured.
    traceback: str = ""

    def describe(self) -> str:
        return (
            f"{self.arch} {self.kind}@{self.rate:g}: "
            f"{self.failure_kind} after {self.attempts} attempt(s) — "
            f"{self.error}"
        )


@dataclass
class SweepOutcome:
    """Everything a fault-tolerant sweep produces.

    ``series`` has the same ``arch -> [(rate, PointResult)]`` shape as
    the serial harnesses — containing every point that succeeded — and
    its ordering is deterministic (spec order per architecture, rates
    ascending) regardless of worker completion order.
    """

    series: Dict[str, List[Tuple[float, PointResult]]]
    failures: List[PointFailure]
    stats: SweepStats
    journal_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_if_failed(self) -> None:
        """Raise a SweepPointError for the first failure, if any."""
        if not self.failures:
            return
        from repro.experiments.parallel import failure_to_error

        raise failure_to_error(self.failures[0])
