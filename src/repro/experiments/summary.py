"""Collect benchmark artifacts into one report.

Every benchmark saves its rendered table under ``results/``; this module
stitches them into a single markdown report (``results/REPORT.md``) in
the paper's presentation order, so one file documents a full run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: Presentation order and titles, keyed by artifact stem.
SECTIONS: List[Tuple[str, str]] = [
    ("headline_claims", "Headline claims"),
    ("fig01_data_patterns", "Fig. 1 — data-pattern breakdown"),
    ("fig02_packet_types", "Fig. 2 — packet-type distribution"),
    ("table1_area", "Table 1 — router component area"),
    ("table2_parameters", "Table 2 — design parameters"),
    ("table3_delays", "Table 3 — delay validation"),
    ("fig09_energy_breakdown", "Fig. 9 — flit energy breakdown"),
    ("fig11a_latency_uniform", "Fig. 11a — latency (UR)"),
    ("fig11b_latency_nuca", "Fig. 11b — latency (NUCA-UR)"),
    ("fig11c_latency_traces", "Fig. 11c — latency (MP traces)"),
    ("fig11d_hop_counts", "Fig. 11d — hop counts"),
    ("fig12a_power_uniform", "Fig. 12a — power (UR)"),
    ("fig12b_power_nuca", "Fig. 12b — power (NUCA-UR)"),
    ("fig12c_power_traces", "Fig. 12c — power (MP traces)"),
    ("fig12d_pdp", "Fig. 12d — power-delay product"),
    ("fig13a_short_flits", "Fig. 13a — short-flit percentage"),
    ("fig13b_shutdown_savings", "Fig. 13b — shutdown power saving"),
    ("fig13c_temperature_reduction", "Fig. 13c — temperature reduction"),
    ("ablation_pipeline_depth", "Ablation — pipeline organisation"),
    ("ablation_vc_count", "Ablation — virtual channels"),
    ("ablation_buffer_depth", "Ablation — buffer depth"),
    ("ablation_express_span", "Ablation — express span"),
    ("ablation_qos", "Ablation — QoS arbitration"),
    ("ablation_link_failures", "Ablation — link failures"),
    ("ablation_3db_placement", "Ablation — 3DB CPU placement"),
    ("ablation_vc_partitioning", "Ablation — VC-per-class partitioning"),
    ("ext_compression_vs_shutdown", "Extension — FPC vs shutdown"),
    ("ext_bursty_tails", "Extension — bursty-traffic tail latency"),
    ("ext_mesi_vs_moesi", "Extension — MESI vs MOESI"),
]


def collect_artifacts(results_dir: Path) -> Dict[str, str]:
    """Read all known artifacts present in *results_dir*."""
    artifacts: Dict[str, str] = {}
    for stem, _ in SECTIONS:
        path = results_dir / f"{stem}.txt"
        if path.exists():
            artifacts[stem] = path.read_text(encoding="utf-8").rstrip()
    return artifacts


def render_report(
    artifacts: Dict[str, str], title: str = "MIRA reproduction report"
) -> str:
    """Render the collected artifacts as one markdown document."""
    lines = [f"# {title}", ""]
    missing = []
    for stem, heading in SECTIONS:
        if stem in artifacts:
            lines += [f"## {heading}", "", "```", artifacts[stem], "```", ""]
        else:
            missing.append(heading)
    if missing:
        lines += ["## Not present in this run", ""]
        lines += [f"- {name}" for name in missing]
        lines.append("")
    return "\n".join(lines)


def write_report(
    results_dir: Path, output: Optional[Path] = None
) -> Path:
    """Generate ``REPORT.md`` from *results_dir*; returns the path."""
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        raise FileNotFoundError(f"no results directory at {results_dir}")
    artifacts = collect_artifacts(results_dir)
    if not artifacts:
        raise FileNotFoundError(
            f"no benchmark artifacts in {results_dir}; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    output = output or results_dir / "REPORT.md"
    output.write_text(render_report(artifacts), encoding="utf-8")
    return output
