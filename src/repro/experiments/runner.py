"""Single-point simulation runners shared by the figure harnesses."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.core.arch import ArchitectureConfig
from repro.experiments.config import ExperimentSettings
from repro.noc.simulator import SimulationResult, Simulator
from repro.power.energy import (
    LayerPowerReport,
    PowerReport,
    layer_power_report,
    power_report,
)
from repro.traffic.nuca import NucaUniformTraffic
from repro.traffic.synthetic import UniformRandomTraffic
from repro.traffic.traces import TraceRecord, TraceTraffic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.store import PointSpec
    from repro.resilience.faults import FaultPlan
    from repro.resilience.variation import VariationSample
    from repro.telemetry.sampler import TelemetryConfig


@dataclass(frozen=True)
class PointResult:
    """One (architecture, workload-point) simulation outcome."""

    arch: str
    label: str
    sim: SimulationResult
    power: PowerReport
    #: Per-node share of switched flits (for thermal power maps).
    node_activity: List[float]
    #: Per-node, per-datapath-layer share of that layer's switched
    #: flits: ``node_layer_activity[n][l]`` is node *n*'s fraction of
    #: all flit traversals that drove layer *l* (each layer column sums
    #: to 1 when the layer saw any traffic, 0 otherwise).
    node_layer_activity: List[List[float]]
    #: Layer-resolved dynamic power from the same event stream (the
    #: simulated Fig. 13b/13c path).
    layer_power: LayerPowerReport

    @property
    def avg_latency(self) -> float:
        return self.sim.avg_latency

    @property
    def avg_hops(self) -> float:
        return self.sim.avg_hops

    @property
    def total_power_w(self) -> float:
        return self.power.total_w

    @property
    def pdp(self) -> float:
        return self.power.pdp(self.sim.avg_latency)

    def router_power_per_node(self) -> List[float]:
        """Per-node router power (W): dynamic split by activity + leakage."""
        n = len(self.node_activity)
        leak_each = self.power.leakage_w / n
        return [
            self.power.dynamic_w * share + leak_each
            for share in self.node_activity
        ]

    def router_layer_power_per_node(self) -> List[List[float]]:
        """Per-node, per-layer router power map (W) for the thermal model.

        Each datapath layer's simulated dynamic power is split across
        routers by that layer's own activity shares (so a layer gated at
        most nodes concentrates its power where it actually switched);
        leakage is split evenly over nodes and layers.  Sums back to
        ``layer_power.total_w``.
        """
        lp = self.layer_power
        n = len(self.node_layer_activity) or 1
        groups = len(lp.layer_dynamic_w)
        leak_each = lp.leakage_w / (n * groups)
        return [
            [
                lp.layer_dynamic_w[layer] * shares[layer] + leak_each
                for layer in range(groups)
            ]
            for shares in self.node_layer_activity
        ]


def point_telemetry_config(
    telemetry_dir: str,
    stem: str,
    interval: int = 100,
    trace: Optional[Dict[str, Any]] = None,
    attribution: bool = False,
) -> "TelemetryConfig":
    """Per-sweep-point telemetry: JSONL stream plus optional sampled trace.

    Shared by both sweep engines so a 54-point sweep names its streams
    (``<dir>/<stem>.jsonl``) and traces (``<dir>/<stem>.trace.json``)
    the same way.  *trace*, when given, enables lifecycle capture with
    production-grade defaults — sampled, not full — overridable via the
    dict keys ``sample_rate`` (default 0.05), ``head_tail`` (default
    16), ``seed``, ``ring_events``, and ``max_packets``.
    *attribution* additionally turns on per-unit stall attribution and
    writes each point's stall report to ``<dir>/<stem>.stalls.json``.
    """
    import os

    from repro.telemetry.sampler import TelemetryConfig

    kwargs: Dict[str, Any] = {}
    if trace is not None:
        kwargs["trace_path"] = os.path.join(
            telemetry_dir, stem + ".trace.json"
        )
        kwargs["trace_sample_rate"] = trace.get("sample_rate", 0.05)
        kwargs["trace_head_tail"] = trace.get("head_tail", 16)
        kwargs["trace_seed"] = trace.get("seed", 0)
        if "ring_events" in trace:
            kwargs["trace_ring_events"] = trace["ring_events"]
        if "max_packets" in trace:
            kwargs["max_trace_packets"] = trace["max_packets"]
    if attribution:
        kwargs["attribution"] = True
        kwargs["attribution_path"] = os.path.join(
            telemetry_dir, stem + ".stalls.json"
        )
    return TelemetryConfig(
        interval=interval,
        metrics_path=os.path.join(telemetry_dir, stem + ".jsonl"),
        **kwargs,
    )


def _run(
    config: ArchitectureConfig,
    traffic,
    settings: ExperimentSettings,
    label: str,
    shutdown_enabled: bool,
    profile: bool = False,
    sanitize: bool = False,
    sanitize_interval: int = 1,
    telemetry: Optional["TelemetryConfig"] = None,
    faults: Optional["FaultPlan"] = None,
    variation: Optional["VariationSample"] = None,
) -> PointResult:
    if variation is not None:
        # A slow corner can force the split ST/LT pipeline; apply the
        # sample's timing verdict before the network is built.  A
        # sigma-0 sample returns the config unchanged.
        config = variation.apply_to(config)
    network = config.build_network(shutdown_enabled=shutdown_enabled)
    if telemetry is not None and telemetry.arch_config is None:
        # The runner knows the architecture; hand it to the sampler so
        # windowed energy (and thermal, if asked) price correctly.
        telemetry.arch_config = config
    sim = Simulator(
        network,
        traffic,
        warmup_cycles=settings.warmup_cycles,
        measure_cycles=settings.measure_cycles,
        drain_cycles=settings.drain_cycles,
        profile=profile,
        sanitize=sanitize,
        sanitize_interval=sanitize_interval,
        telemetry=telemetry,
        faults=faults,
    )
    result = sim.run()
    report = power_report(
        config,
        result.events,
        result.window_cycles,
        shutdown_enabled=shutdown_enabled,
        variation=variation,
    )
    total_flits = sum(r.flits_switched for r in network.routers) or 1
    activity = [r.flits_switched / total_flits for r in network.routers]
    groups = network.layer_groups
    # Node n's flit traversals that drove layer l: effective active-layer
    # count k > l, i.e. histogram indices k-1 >= l.
    layer_flits = [
        [
            sum(r.flits_switched_by_layers[i] for i in range(layer, groups))
            for layer in range(groups)
        ]
        for r in network.routers
    ]
    layer_totals = [
        sum(per_node[layer] for per_node in layer_flits)
        for layer in range(groups)
    ]
    layer_activity = [
        [
            per_node[layer] / layer_totals[layer] if layer_totals[layer] else 0.0
            for layer in range(groups)
        ]
        for per_node in layer_flits
    ]
    layer_report = layer_power_report(
        config,
        result.events,
        result.window_cycles,
        shutdown_enabled=shutdown_enabled,
        variation=variation,
    )
    return PointResult(
        arch=config.name,
        label=label,
        sim=result,
        power=report,
        node_activity=activity,
        node_layer_activity=layer_activity,
        layer_power=layer_report,
    )


def run_uniform_point(
    config: ArchitectureConfig,
    rate: float,
    settings: ExperimentSettings,
    short_flit_fraction: float = 0.0,
    shutdown_enabled: bool = False,
    seed: Optional[int] = None,
    profile: bool = False,
    sanitize: bool = False,
    sanitize_interval: int = 1,
    telemetry: Optional["TelemetryConfig"] = None,
    faults: Optional["FaultPlan"] = None,
    variation: Optional["VariationSample"] = None,
) -> PointResult:
    """Uniform-random traffic at *rate* flits/node/cycle."""
    traffic = UniformRandomTraffic(
        num_nodes=config.num_nodes,
        flit_rate=rate,
        short_flit_fraction=short_flit_fraction,
        seed=settings.seed if seed is None else seed,
    )
    return _run(
        config, traffic, settings, f"UR@{rate:g}", shutdown_enabled,
        profile=profile, sanitize=sanitize, sanitize_interval=sanitize_interval,
        telemetry=telemetry, faults=faults, variation=variation,
    )


def run_nuca_point(
    config: ArchitectureConfig,
    request_rate: float,
    settings: ExperimentSettings,
    short_flit_fraction: float = 0.0,
    shutdown_enabled: bool = False,
    seed: Optional[int] = None,
    profile: bool = False,
    sanitize: bool = False,
    sanitize_interval: int = 1,
    telemetry: Optional["TelemetryConfig"] = None,
    faults: Optional["FaultPlan"] = None,
    variation: Optional["VariationSample"] = None,
) -> PointResult:
    """NUCA-constrained request/response traffic (Fig. 11b)."""
    traffic = NucaUniformTraffic(
        cpu_nodes=config.cpu_nodes,
        cache_nodes=config.cache_nodes,
        request_rate=request_rate,
        short_flit_fraction=short_flit_fraction,
        seed=settings.seed if seed is None else seed,
    )
    return _run(
        config, traffic, settings, f"NUCA@{request_rate:g}", shutdown_enabled,
        profile=profile, sanitize=sanitize, sanitize_interval=sanitize_interval,
        telemetry=telemetry, faults=faults, variation=variation,
    )


def fault_plan_for_spec(spec: "PointSpec") -> Optional["FaultPlan"]:
    """Materialise the spec's fault fields as a FaultPlan (or ``None``).

    Explicit ``fault_links``/``fault_vcs`` and the seeded-random sample
    (``fault_random_links`` channels drawn with ``fault_seed``) combine
    into one plan; the random draw depends only on the topology and the
    seed, so the plan is a pure function of the spec — exactly what the
    cache key assumes.
    """
    if not spec.has_faults:
        return None
    from repro.resilience.faults import FaultPlan, LinkFault, StuckVCFault

    links = [
        LinkFault(cycle=cycle, src=src, dst=dst)
        for cycle, src, dst in spec.fault_links
    ]
    if spec.fault_random_links:
        sampled = FaultPlan.random_links(
            spec.config.build_topology(),
            spec.fault_random_links,
            spec.fault_seed,
            cycle=spec.fault_cycle,
            mode=spec.fault_mode,
        )
        links.extend(sampled.links)
    vcs = tuple(
        StuckVCFault(cycle=cycle, node=node, port=port, vc=vc)
        for cycle, node, port, vc in spec.fault_vcs
    )
    return FaultPlan(links=tuple(links), vcs=vcs, mode=spec.fault_mode)


def variation_sample_for_spec(spec: "PointSpec") -> Optional["VariationSample"]:
    """The spec's process-variation sample (or ``None`` at sigma 0)."""
    if not spec.variation_sigma:
        return None
    from repro.resilience.variation import VariationModel

    model = VariationModel(spec.variation_sigma, seed=spec.variation_seed)
    return model.sample_for(spec.config)


def run_point_spec(
    spec: "PointSpec",
    settings: ExperimentSettings,
    telemetry: Optional["TelemetryConfig"] = None,
) -> PointResult:
    """Run one :class:`~repro.experiments.store.PointSpec`.

    The single dispatch point the sweep engine and the result cache
    share: the spec carries everything that identifies the point, so
    running it here is guaranteed to match what its cache key hashes.
    """
    run = run_uniform_point if spec.kind == "uniform" else run_nuca_point
    return run(
        spec.config,
        spec.rate,
        settings,
        short_flit_fraction=spec.short_flit_fraction,
        shutdown_enabled=spec.shutdown_enabled,
        seed=spec.seed,
        telemetry=telemetry,
        faults=fault_plan_for_spec(spec),
        variation=variation_sample_for_spec(spec),
    )


def run_trace_point(
    config: ArchitectureConfig,
    records: List[TraceRecord],
    settings: ExperimentSettings,
    label: str,
    shutdown_enabled: bool = True,
) -> PointResult:
    """Replay an MP trace (Figs. 11c, 12c); shutdown is on by default
    because the trace experiments exercise the short-flit technique."""
    traffic = TraceTraffic(records)
    return _run(config, traffic, settings, label, shutdown_enabled)
