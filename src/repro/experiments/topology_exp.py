"""Cross-fabric experiments on the generic topology substrate.

``fig_topology`` re-runs the paper's layer-shutdown power evaluation
(the simulated Fig. 13b path) on each substrate fabric — the 6x6 mesh
the paper measures, a 36-node bidirectional ring and the hub-augmented
chiplet mesh — holding the multi-layer router parameters fixed so the
comparison isolates the fabric: how much of the shutdown opportunity
survives when the graph, not the router, changes.

Every point flows through :func:`~repro.experiments.store.cached_point_run`,
so fabrics key into the shared result store exactly like the paper's
architectures (the v4 key payload carries the fabric fields).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.arch import ArchitectureConfig, fabric_configs
from repro.experiments.config import ExperimentSettings
from repro.experiments.store import PointSpec, ResultStore, cached_point_run

#: Payload short-flit fractions evaluated per fabric (Fig. 13b's axis).
DEFAULT_SHORT_FRACTIONS = (0.25, 0.50)


def fig_topology_shutdown(
    short_fractions: Tuple[float, ...] = DEFAULT_SHORT_FRACTIONS,
    configs: Optional[List[ArchitectureConfig]] = None,
    settings: Optional[ExperimentSettings] = None,
    rate: float = 0.1,
    store: Optional[ResultStore] = None,
) -> Dict[str, Dict[float, float]]:
    """Layer-shutdown dynamic-power saving per fabric.

    Returns fabric name -> {short fraction -> saved fraction}, same
    shape as :func:`~repro.experiments.thermal_exp.fig13b_shutdown_savings`
    so existing plotting/reporting code consumes it unchanged.
    """
    configs = configs or fabric_configs()
    settings = settings or ExperimentSettings.from_env()
    out: Dict[str, Dict[float, float]] = {}
    for config in configs:
        out[config.name] = {}
        for s in short_fractions:
            point = cached_point_run(
                store,
                PointSpec(
                    config, "uniform", rate,
                    short_flit_fraction=s, shutdown_enabled=True,
                ),
                settings,
            )
            out[config.name][s] = point.layer_power.shutdown_saving_fraction
    return out


def fig_topology_latency(
    configs: Optional[List[ArchitectureConfig]] = None,
    settings: Optional[ExperimentSettings] = None,
    rates: Optional[Tuple[float, ...]] = None,
    store: Optional[ResultStore] = None,
) -> Dict[str, List[Tuple[float, float]]]:
    """Uniform-random load/latency curve per fabric (context for the
    shutdown numbers: a fabric that saves power by congesting is not
    saving anything)."""
    configs = configs or fabric_configs()
    settings = settings or ExperimentSettings.from_env()
    if rates is None:
        rates = tuple(settings.uniform_rates[:3])
    out: Dict[str, List[Tuple[float, float]]] = {}
    for config in configs:
        series: List[Tuple[float, float]] = []
        for rate in rates:
            point = cached_point_run(
                store, PointSpec(config, "uniform", rate), settings
            )
            series.append((rate, point.sim.avg_latency))
        out[config.name] = series
    return out


def fig_topology(
    settings: Optional[ExperimentSettings] = None,
    configs: Optional[List[ArchitectureConfig]] = None,
    store: Optional[ResultStore] = None,
    short_fractions: Tuple[float, ...] = DEFAULT_SHORT_FRACTIONS,
    rate: float = 0.1,
) -> Dict[str, Dict]:
    """The full cross-fabric comparison: shutdown savings + latency."""
    return {
        "shutdown": fig_topology_shutdown(
            short_fractions, configs, settings, rate=rate, store=store
        ),
        "latency": fig_topology_latency(configs, settings, store=store),
    }
