"""Shared experiment settings.

One knob matters: scale.  ``ExperimentSettings.quick()`` keeps every
harness fast enough for CI/pytest-benchmark; ``ExperimentSettings.full()``
runs the longer sweeps behind the committed EXPERIMENTS.md numbers.  The
``REPRO_SCALE`` environment variable (``quick``/``full``) selects the
default.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class ExperimentSettings:
    """Cycle budgets and sweep points for the simulation harnesses."""

    warmup_cycles: int
    measure_cycles: int
    drain_cycles: int
    #: Flit injection rates per node for the UR sweeps (Figs. 11a, 12a).
    uniform_rates: Tuple[float, ...]
    #: Request rates per CPU for the NUCA-UR sweeps (Figs. 11b, 12b).
    nuca_rates: Tuple[float, ...]
    #: Hierarchy cycles simulated when generating each MP trace.
    trace_cycles: int
    #: Workloads used for the MP-trace experiments.
    workloads: Tuple[str, ...]
    seed: int = 1

    @classmethod
    def quick(cls) -> "ExperimentSettings":
        return cls(
            warmup_cycles=500,
            measure_cycles=2500,
            drain_cycles=8000,
            uniform_rates=(0.05, 0.15, 0.25, 0.35),
            nuca_rates=(0.05, 0.15, 0.30),
            trace_cycles=30000,
            workloads=("tpcw", "sjbb", "apache", "zeus", "art", "multimedia"),
        )

    @classmethod
    def full(cls) -> "ExperimentSettings":
        return cls(
            warmup_cycles=2000,
            measure_cycles=10000,
            drain_cycles=30000,
            uniform_rates=(0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45),
            nuca_rates=(0.05, 0.10, 0.15, 0.20, 0.25, 0.30),
            trace_cycles=100000,
            workloads=("tpcw", "sjbb", "apache", "zeus", "art", "multimedia"),
        )

    @classmethod
    def from_env(cls) -> "ExperimentSettings":
        scale = os.environ.get("REPRO_SCALE", "quick").lower()
        if scale == "full":
            return cls.full()
        if scale == "quick":
            return cls.quick()
        raise ValueError(f"REPRO_SCALE must be 'quick' or 'full', got {scale!r}")
