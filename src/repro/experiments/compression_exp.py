"""Compression-vs-shutdown comparison (extension experiment).

Runs the same workload trace through the 3DM network three ways:

* **baseline** — raw 5-flit data packets, shutdown off;
* **shutdown** — raw packets, layer shutdown gating short flits
  (the paper's technique);
* **fpc** — FPC-compressed packets (2-5 flits), shutdown off
  (compressed payloads are dense).

Reports latency and power so the energy-vs-latency trade of the two
frequent-pattern exploitation styles is visible.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cache.hierarchy import generate_trace
from repro.core.arch import make_3dm
from repro.core.compression import compress_trace
from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import PointResult, run_trace_point
from repro.traffic.workloads import WORKLOADS


def compression_vs_shutdown(
    settings: Optional[ExperimentSettings] = None,
    workload: str = "tpcw",
) -> Dict[str, PointResult]:
    """Run the three variants; returns label -> PointResult."""
    settings = settings or ExperimentSettings.from_env()
    if workload not in WORKLOADS:
        raise ValueError(f"unknown workload {workload!r}")
    config = make_3dm()
    records, _ = generate_trace(
        config, WORKLOADS[workload], cycles=settings.trace_cycles,
        seed=settings.seed,
    )
    compressed = compress_trace(records)
    return {
        "baseline": run_trace_point(
            config, records, settings, label=workload, shutdown_enabled=False
        ),
        "shutdown": run_trace_point(
            config, records, settings, label=workload, shutdown_enabled=True
        ),
        "fpc": run_trace_point(
            config, compressed, settings, label=workload, shutdown_enabled=False
        ),
    }
