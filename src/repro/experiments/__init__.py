"""Experiment harnesses: one entry point per table/figure of the paper.

Every harness returns plain data structures (and can print the paper's
rows/series via :mod:`repro.experiments.report`); the ``benchmarks/``
tree wires each one into pytest-benchmark.

========== ==========================================
``fig1``   data-pattern breakdown      (breakdown)
``fig2``   packet-type distribution    (breakdown)
``table1`` router component area       (area_tables)
``table2`` design parameters           (area_tables)
``table3`` delay validation            (area_tables)
``fig9``   flit energy breakdown       (breakdown)
``fig11``  latency results             (latency)
``fig12``  power results               (power)
``fig13``  shutdown power and thermal  (thermal_exp)
========== ==========================================
"""

from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import (
    PointResult,
    run_nuca_point,
    run_trace_point,
    run_uniform_point,
)
from repro.experiments.latency import (
    fig11a_uniform_latency,
    fig11b_nuca_latency,
    fig11c_trace_latency,
    fig11d_hop_counts,
)
from repro.experiments.power import (
    fig12a_uniform_power,
    fig12b_nuca_power,
    fig12c_trace_power,
    fig12d_pdp,
)
from repro.experiments.thermal_exp import (
    fig13a_short_flit_fractions,
    fig13b_shutdown_savings,
    fig13c_temperature_reduction,
)
from repro.experiments.area_tables import table1_area, table2_parameters, table3_delays
from repro.experiments.breakdown import (
    fig1_data_patterns,
    fig2_packet_types,
    fig9_energy_breakdown,
)
from repro.experiments.ablations import (
    ablate_3db_cpu_placement,
    ablate_buffer_depth,
    ablate_vc_partitioning,
    ablate_express_span,
    ablate_link_failures,
    ablate_pipeline_depth,
    ablate_qos,
    ablate_vc_count,
)
from repro.experiments.headline import evaluate_headline_claims, render_claims
from repro.experiments.compression_exp import compression_vs_shutdown
from repro.experiments.protocol_exp import ProtocolResult, compare_protocols
from repro.experiments.export import export_json, point_to_dict, sweep_to_dict
from repro.experiments.parallel import SweepPointError, parallel_sweep
from repro.experiments.store import (
    PointFailure,
    PointSpec,
    ResultStore,
    RunJournal,
    SweepOutcome,
    SweepStats,
    cached_point_run,
    point_key,
)
from repro.experiments.sweep import run_sweep, specs_for_grid
from repro.experiments.summary import write_report
from repro.experiments.resilience_exp import (
    fault_summary_table,
    fig_resilience,
    fig_resilience_faults,
    fig_resilience_variation,
    variation_summary,
)
from repro.experiments.topology_exp import (
    fig_topology,
    fig_topology_latency,
    fig_topology_shutdown,
)

__all__ = [
    "ExperimentSettings",
    "PointResult",
    "run_uniform_point",
    "run_nuca_point",
    "run_trace_point",
    "fig11a_uniform_latency",
    "fig11b_nuca_latency",
    "fig11c_trace_latency",
    "fig11d_hop_counts",
    "fig12a_uniform_power",
    "fig12b_nuca_power",
    "fig12c_trace_power",
    "fig12d_pdp",
    "fig13a_short_flit_fractions",
    "fig13b_shutdown_savings",
    "fig13c_temperature_reduction",
    "table1_area",
    "table2_parameters",
    "table3_delays",
    "fig1_data_patterns",
    "fig2_packet_types",
    "fig9_energy_breakdown",
    "ablate_pipeline_depth",
    "ablate_vc_count",
    "ablate_buffer_depth",
    "ablate_express_span",
    "ablate_qos",
    "ablate_link_failures",
    "ablate_3db_cpu_placement",
    "ablate_vc_partitioning",
    "evaluate_headline_claims",
    "render_claims",
    "compression_vs_shutdown",
    "compare_protocols",
    "ProtocolResult",
    "export_json",
    "point_to_dict",
    "sweep_to_dict",
    "parallel_sweep",
    "SweepPointError",
    "PointFailure",
    "PointSpec",
    "ResultStore",
    "RunJournal",
    "SweepOutcome",
    "SweepStats",
    "cached_point_run",
    "point_key",
    "run_sweep",
    "specs_for_grid",
    "write_report",
    "fig_resilience",
    "fig_resilience_variation",
    "fig_resilience_faults",
    "variation_summary",
    "fault_summary_table",
    "fig_topology",
    "fig_topology_shutdown",
    "fig_topology_latency",
]
