"""Machine-readable experiment export (JSON).

The text artifacts under ``results/`` are for humans; this module
serialises the same data structures to JSON so plotting scripts and
downstream analyses can consume runs directly.
"""

from __future__ import annotations

import json
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from repro.experiments.runner import PointResult


def point_to_dict(point: PointResult) -> Dict[str, Any]:
    """Flatten a PointResult into JSON-serialisable primitives."""
    sim = point.sim
    return {
        "arch": point.arch,
        "label": point.label,
        "avg_latency_cycles": sim.avg_latency,
        "latency_p50": sim.latency_p50,
        "latency_p95": sim.latency_p95,
        "latency_p99": sim.latency_p99,
        "avg_hops": sim.avg_hops,
        "throughput_flits_node_cycle": sim.throughput,
        "packets_measured": sim.packets_measured,
        "saturated": sim.saturated,
        "power_w": {
            "dynamic": point.power.dynamic_w,
            "leakage": point.power.leakage_w,
            "total": point.power.total_w,
            "breakdown": dict(point.power.breakdown_w),
        },
        "pdp_ws": point.pdp,
        "short_flit_fraction": sim.events.short_flit_fraction,
        "layer_power_w": {
            "per_layer_dynamic": list(point.layer_power.layer_dynamic_w),
            "all_layers_on_dynamic": point.layer_power.all_layers_on_dynamic_w,
            "shutdown_saving_fraction": (
                point.layer_power.shutdown_saving_fraction
            ),
        },
    }


def sweep_to_dict(
    sweep: Dict[str, List[Tuple[float, PointResult]]],
) -> Dict[str, List[Dict[str, Any]]]:
    """Serialise a rate sweep (Figs. 11a/b, 12a/b shape)."""
    return {
        arch: [
            {"rate": rate, **point_to_dict(point)} for rate, point in series
        ]
        for arch, series in sweep.items()
    }


def workload_matrix_to_dict(
    results: Dict[str, Dict[str, PointResult]],
) -> Dict[str, Dict[str, Dict[str, Any]]]:
    """Serialise workload x arch results (Figs. 11c, 12c shape)."""
    return {
        workload: {
            arch: point_to_dict(point) for arch, point in per_arch.items()
        }
        for workload, per_arch in results.items()
    }


def _jsonify(value: Any) -> Any:
    if is_dataclass(value) and not isinstance(value, type):
        return _jsonify(asdict(value))
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def export_json(
    data: Any, path: Union[str, Path], indent: int = 2
) -> Path:
    """Write *data* (sweeps, dicts of dataclasses, ...) as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(_jsonify(data), indent=indent, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path
