"""Power experiments (Fig. 12a-d)."""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.cache.hierarchy import generate_trace
from repro.core.arch import ArchitectureConfig, standard_configs
from repro.experiments.config import ExperimentSettings
from repro.experiments.latency import Sweep
from repro.experiments.runner import PointResult, run_trace_point
from repro.experiments.store import PointSpec, ResultStore, cached_point_run
from repro.power.energy import PowerReport
from repro.power.gating import shutdown_saving
from repro.traffic.workloads import WORKLOADS


def _configs(configs: Optional[List[ArchitectureConfig]]) -> List[ArchitectureConfig]:
    return standard_configs() if configs is None else configs


def fig12a_uniform_power(
    settings: Optional[ExperimentSettings] = None,
    configs: Optional[List[ArchitectureConfig]] = None,
    store: Optional[ResultStore] = None,
) -> Sweep:
    """Fig. 12a: average power vs injection rate (UR, 0% short flits).

    ``store`` (opt-in) serves previously simulated points from the
    content-addressed result cache and fills it with fresh ones.  The
    uniform points here share keys with :func:`fig11a_uniform_latency`,
    so running both against one store simulates each point once.
    """
    settings = settings or ExperimentSettings.from_env()
    out: Sweep = {}
    for config in _configs(configs):
        out[config.name] = [
            (rate, cached_point_run(
                store, PointSpec(config, "uniform", rate), settings))
            for rate in settings.uniform_rates
        ]
    return out


def fig12b_nuca_power(
    settings: Optional[ExperimentSettings] = None,
    configs: Optional[List[ArchitectureConfig]] = None,
    store: Optional[ResultStore] = None,
) -> Sweep:
    """Fig. 12b: average power vs request rate (NUCA-UR)."""
    settings = settings or ExperimentSettings.from_env()
    out: Sweep = {}
    for config in _configs(configs):
        out[config.name] = [
            (rate, cached_point_run(
                store, PointSpec(config, "nuca", rate), settings))
            for rate in settings.nuca_rates
        ]
    return out


def _analytic_shutdown_point(
    config: ArchitectureConfig, point: PointResult
) -> PointResult:
    """Project the analytic shutdown factor onto an all-layers-on run.

    The ``--analytic-shutdown`` fallback: instead of the event-driven
    per-layer accounting, scale the simulated all-layers-on dynamic power
    by :func:`~repro.power.gating.shutdown_saving`'s power factor at the
    measured short-flit fraction of the trace.
    """
    events = point.sim.events
    fraction = (
        events.short_flit_hops / events.flit_hops if events.flit_hops else 0.0
    )
    factor = shutdown_saving(config, fraction).power_factor
    scaled = PowerReport(
        name=point.power.name,
        dynamic_w=point.power.dynamic_w * factor,
        leakage_w=point.power.leakage_w,
        breakdown_w={
            key: value * factor for key, value in point.power.breakdown_w.items()
        },
    )
    return replace(point, power=scaled)


def fig12c_trace_power(
    settings: Optional[ExperimentSettings] = None,
    configs: Optional[List[ArchitectureConfig]] = None,
    analytic_shutdown: bool = False,
) -> Dict[str, Dict[str, PointResult]]:
    """Fig. 12c: MP-trace power, workload -> arch.

    The multi-layer designs run with layer shutdown enabled (the traces
    carry real short-flit payloads, and the event-driven layer-resolved
    accounting prices exactly the layers each flit switched); the paper's
    base cases (2DB/3DB) run without shutdown, matching "with no layer
    shut down in the base cases" (Sec. 4.2.2).  ``analytic_shutdown=True``
    falls back to all-layers-on runs scaled by the closed-form shutdown
    factor at each trace's measured short-flit fraction.
    """
    settings = settings or ExperimentSettings.from_env()
    out: Dict[str, Dict[str, PointResult]] = {}
    for workload_name in settings.workloads:
        profile = WORKLOADS[workload_name]
        per_arch: Dict[str, PointResult] = {}
        for config in _configs(configs):
            records, _ = generate_trace(
                config, profile, cycles=settings.trace_cycles, seed=settings.seed
            )
            point = run_trace_point(
                config,
                records,
                settings,
                label=workload_name,
                shutdown_enabled=(
                    config.is_multilayer and not analytic_shutdown
                ),
            )
            if analytic_shutdown and config.is_multilayer:
                point = _analytic_shutdown_point(config, point)
            per_arch[config.name] = point
        out[workload_name] = per_arch
    return out


def fig12d_pdp(
    settings: Optional[ExperimentSettings] = None,
    configs: Optional[List[ArchitectureConfig]] = None,
) -> Dict[str, List[Tuple[float, float]]]:
    """Fig. 12d: power-delay product vs injection rate, normalised to 2DB.

    Returns arch -> [(rate, normalised PDP)].
    """
    settings = settings or ExperimentSettings.from_env()
    sweep = fig12a_uniform_power(settings, configs)
    if "2DB" not in sweep:
        raise ValueError("fig12d normalisation needs the 2DB baseline in configs")
    base = {rate: point.pdp for rate, point in sweep["2DB"]}
    out: Dict[str, List[Tuple[float, float]]] = {}
    for arch, series in sweep.items():
        out[arch] = [
            (rate, point.pdp / base[rate] if base[rate] else 0.0)
            for rate, point in series
        ]
    return out
