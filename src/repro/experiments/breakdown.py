"""Traffic-characterisation and energy-breakdown figures (Figs. 1, 2, 9)."""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.cache.hierarchy import generate_trace
from repro.core.arch import make_2db, make_3db, make_3dm, make_3dme
from repro.experiments.config import ExperimentSettings
from repro.power.orion import RouterEnergyModel
from repro.traffic.patterns import PatternKind, classify_word
from repro.traffic.workloads import WORKLOADS

#: Lines sampled per workload for the Fig. 1 pattern census.
FIG1_SAMPLE_LINES = 2000


def fig1_data_patterns(
    workloads: Optional[tuple] = None,
    sample_lines: int = FIG1_SAMPLE_LINES,
    seed: int = 1,
) -> Dict[str, Dict[str, float]]:
    """Fig. 1: breakdown of payload words by frequent-pattern class.

    Returns workload -> {pattern -> fraction}.
    """
    workloads = workloads or tuple(WORKLOADS)
    out: Dict[str, Dict[str, float]] = {}
    for name in workloads:
        profile = WORKLOADS[name]
        rng = random.Random(seed)
        counts = {kind: 0 for kind in PatternKind}
        total = 0
        for _ in range(sample_lines):
            for word in profile.sample_line(rng):
                counts[classify_word(word)] += 1
                total += 1
        out[name] = {kind.value: counts[kind] / total for kind in PatternKind}
    return out


def fig2_packet_types(
    settings: Optional[ExperimentSettings] = None,
) -> Dict[str, Dict[str, float]]:
    """Fig. 2: control vs data packet split of each workload's traffic.

    Measured from hierarchy-generated message streams, i.e. it reflects
    the MESI protocol's actual message mix, not a configured constant.
    """
    settings = settings or ExperimentSettings.from_env()
    config = make_2db()
    out: Dict[str, Dict[str, float]] = {}
    for name in settings.workloads:
        _, stats = generate_trace(
            config,
            WORKLOADS[name],
            cycles=max(20000, settings.trace_cycles // 3),
            seed=settings.seed,
        )
        ctrl = stats.ctrl_packet_fraction
        out[name] = {"ctrl": ctrl, "data": 1.0 - ctrl}
    return out


def fig9_energy_breakdown() -> Dict[str, Dict[str, float]]:
    """Fig. 9: per-flit-hop energy by component (picojoules).

    Returns arch -> {component -> pJ}; 3DM(-E) NC variants share the
    energy of their combined counterparts (pipeline merging does not
    change per-event energy, Sec. 4.2.2).
    """
    out: Dict[str, Dict[str, float]] = {}
    for make in (make_2db, make_3db, make_3dm, make_3dme):
        config = make()
        model = RouterEnergyModel.for_config(config)
        out[config.name] = {
            component: joules * 1e12
            for component, joules in model.flit_hop_breakdown().items()
        }
    return out
