"""Table reproductions: component area (Table 1), design parameters
(Table 2) and pipeline-merge delay validation (Table 3)."""

from __future__ import annotations

from typing import Dict, List

from repro.core.arch import make_2db, make_3db, make_3dm, make_3dme
from repro.power.area import PAPER_TABLE1, RouterArea, router_area
from repro.timing.delay import DelayReport, stage_delay_report
from repro.timing.wires import (
    INVERTER_DELAY_PS,
    REFERENCE_WIRE_PS_PER_MM,
    REPEATED_WIRE_PS_PER_MM,
)

#: The four architectures Table 1 tabulates (NC variants share areas).
TABLE1_CONFIGS = (make_2db, make_3db, make_3dm, make_3dme)


def table1_area() -> Dict[str, Dict[str, object]]:
    """Table 1: per-component areas, model vs paper.

    Returns arch name -> {"model": RouterArea, "paper": dict}.
    """
    out: Dict[str, Dict[str, object]] = {}
    for make in TABLE1_CONFIGS:
        config = make()
        area: RouterArea = router_area(config)
        out[config.name] = {
            "model": area,
            "paper": PAPER_TABLE1[config.name],
        }
    return out


def table2_parameters() -> Dict[str, float]:
    """Table 2: the wire/link design parameters behind the delay model."""
    return {
        "reference_wire_ps_per_mm": REFERENCE_WIRE_PS_PER_MM,
        "repeated_wire_ps_per_mm": REPEATED_WIRE_PS_PER_MM,
        "inverter_delay_ps": INVERTER_DELAY_PS,
        "link_length_2db_mm": make_2db().pitch_mm,
        "link_length_3dm_mm": make_3dm().pitch_mm,
    }


#: Paper's Table 3 values for side-by-side reporting.
PAPER_TABLE3 = {
    "2DB": {"xbar_ps": 378.57, "link_ps": 309.48, "combined": False},
    "3DM": {"xbar_ps": 142.86, "link_ps": 154.74, "combined": True},
    "3DM-E": {"xbar_ps": 182.85, "link_ps": 309.48, "combined": True},
}


def table3_delays() -> List[DelayReport]:
    """Table 3: ST+LT merge validation for 2DB / 3DM / 3DM-E.

    The 3DM-E row uses its *longest* link (the span-2 express channel),
    as the paper does.
    """
    cfg_2db = make_2db()
    cfg_3dm = make_3dm()
    cfg_3dme = make_3dme()
    return [
        stage_delay_report(
            "2DB", cfg_2db.ports, cfg_2db.flit_bits, 1, cfg_2db.max_link_mm
        ),
        stage_delay_report(
            "3DM",
            cfg_3dm.ports,
            cfg_3dm.flit_bits,
            cfg_3dm.layers,
            cfg_3dm.max_link_mm,
        ),
        stage_delay_report(
            "3DM-E",
            cfg_3dme.ports,
            cfg_3dme.flit_bits,
            cfg_3dme.layers,
            cfg_3dme.max_link_mm,
        ),
    ]
