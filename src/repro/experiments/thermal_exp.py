"""Shutdown power and thermal experiments (Fig. 13a-c)."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cache.hierarchy import generate_trace
from repro.core.arch import ArchitectureConfig, make_2db, make_3dm, make_3dme
from repro.experiments.config import ExperimentSettings
from repro.experiments.store import PointSpec, ResultStore, cached_point_run
from repro.power.gating import shutdown_saving
from repro.thermal.hotspot import temperature_drop
from repro.traffic.workloads import WORKLOADS


def fig13a_short_flit_fractions(
    settings: Optional[ExperimentSettings] = None,
) -> Dict[str, float]:
    """Fig. 13a: short-flit percentage of each workload's traffic.

    Measured from generated traces (payload flits with one active word
    group), not read from the profile, so it validates the whole payload
    pipeline.
    """
    settings = settings or ExperimentSettings.from_env()
    config = make_2db()
    out: Dict[str, float] = {}
    for name in settings.workloads:
        records, _ = generate_trace(
            config,
            WORKLOADS[name],
            cycles=max(20000, settings.trace_cycles // 3),
            seed=settings.seed,
        )
        short = 0
        total = 0
        for record in records:
            if record.payload_groups is None:
                continue
            for groups in record.payload_groups[1:]:  # skip header flit
                total += 1
                short += groups == 1
        out[name] = short / total if total else 0.0
    return out


def fig13b_shutdown_savings(
    short_fractions: Tuple[float, ...] = (0.25, 0.50),
    configs: Optional[List[ArchitectureConfig]] = None,
) -> Dict[str, Dict[float, float]]:
    """Fig. 13b: dynamic-power saving of the shutdown technique.

    Returns arch -> {short fraction -> saved fraction}.  The paper
    evaluates 2DB, 3DM and 3DM-E (the technique applies to all three;
    Sec. 4.2.2).
    """
    configs = configs or [make_2db(), make_3dm(), make_3dme()]
    out: Dict[str, Dict[float, float]] = {}
    for config in configs:
        out[config.name] = {
            s: shutdown_saving(config, s).saving_fraction for s in short_fractions
        }
    return out


def fig13c_temperature_reduction(
    settings: Optional[ExperimentSettings] = None,
    rates: Optional[Tuple[float, ...]] = None,
    short_fraction: float = 0.50,
    config: Optional[ArchitectureConfig] = None,
    store: Optional[ResultStore] = None,
) -> Dict[float, float]:
    """Fig. 13c: average temperature drop of 3DM with 50% short flits.

    For each injection rate, the same UR workload is simulated with 0%
    short flits (shutdown moot) and with ``short_fraction`` short flits
    (shutdown active); the per-node router powers feed the thermal solver
    and the average-temperature difference is reported.
    """
    settings = settings or ExperimentSettings.from_env()
    config = config or make_3dm()
    if rates is None:
        rates = tuple(settings.uniform_rates[:3])
    out: Dict[float, float] = {}
    for rate in rates:
        base = cached_point_run(
            store,
            PointSpec(config, "uniform", rate, shutdown_enabled=True),
            settings,
        )
        gated = cached_point_run(
            store,
            PointSpec(
                config, "uniform", rate,
                short_flit_fraction=short_fraction, shutdown_enabled=True,
            ),
            settings,
        )
        out[rate] = temperature_drop(
            config,
            base.router_power_per_node(),
            gated.router_power_per_node(),
        )
    return out
