"""Shutdown power and thermal experiments (Fig. 13a-c)."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cache.hierarchy import generate_trace
from repro.core.arch import ArchitectureConfig, make_2db, make_3dm, make_3dme
from repro.experiments.config import ExperimentSettings
from repro.experiments.store import PointSpec, ResultStore, cached_point_run
from repro.power.gating import shutdown_saving
from repro.thermal.hotspot import temperature_drop
from repro.traffic.workloads import WORKLOADS


def fig13a_short_flit_fractions(
    settings: Optional[ExperimentSettings] = None,
) -> Dict[str, float]:
    """Fig. 13a: short-flit percentage of each workload's traffic.

    Measured from generated traces (payload flits with one active word
    group), not read from the profile, so it validates the whole payload
    pipeline.
    """
    settings = settings or ExperimentSettings.from_env()
    config = make_2db()
    out: Dict[str, float] = {}
    for name in settings.workloads:
        records, _ = generate_trace(
            config,
            WORKLOADS[name],
            cycles=max(20000, settings.trace_cycles // 3),
            seed=settings.seed,
        )
        short = 0
        total = 0
        for record in records:
            if record.payload_groups is None:
                continue
            for groups in record.payload_groups[1:]:  # skip header flit
                total += 1
                short += groups == 1
        out[name] = short / total if total else 0.0
    return out


def fig13b_shutdown_savings(
    short_fractions: Tuple[float, ...] = (0.25, 0.50),
    configs: Optional[List[ArchitectureConfig]] = None,
    settings: Optional[ExperimentSettings] = None,
    analytic: bool = False,
    rate: float = 0.1,
    store: Optional[ResultStore] = None,
) -> Dict[str, Dict[float, float]]:
    """Fig. 13b: dynamic-power saving of the shutdown technique.

    Returns arch -> {short fraction -> saved fraction}.  The paper
    evaluates 2DB, 3DM and 3DM-E (the technique applies to all three;
    Sec. 4.2.2).

    Default is the *simulated* path: each point runs a uniform-random
    simulation with that payload short-flit fraction and layer shutdown
    enabled, and the saving is the layer-resolved power report's dynamic
    power against its own all-layers-on baseline (same event stream, so
    no cross-run noise).  ``analytic=True`` (the CLI's
    ``--analytic-shutdown``) is the closed-form fallback:
    :func:`~repro.power.gating.shutdown_saving` at the nominal fraction.

    Axis semantics differ slightly between the two paths: the nominal
    fraction parameterises *payload* flits, while header/control flits
    are short by construction, so the measured short-flit fraction of
    simulated traffic — and with it the simulated saving — sits above
    the analytic-at-nominal curve ((1 + 2s)/3 with the default packet
    mix).  The two paths agree within 2% when the analytic model is
    evaluated at the measured fraction (asserted in tests).
    """
    configs = configs or [make_2db(), make_3dm(), make_3dme()]
    if analytic:
        return {
            config.name: {
                s: shutdown_saving(config, s).saving_fraction
                for s in short_fractions
            }
            for config in configs
        }
    settings = settings or ExperimentSettings.from_env()
    out: Dict[str, Dict[float, float]] = {}
    for config in configs:
        out[config.name] = {}
        for s in short_fractions:
            point = cached_point_run(
                store,
                PointSpec(
                    config, "uniform", rate,
                    short_flit_fraction=s, shutdown_enabled=True,
                ),
                settings,
            )
            out[config.name][s] = point.layer_power.shutdown_saving_fraction
    return out


def fig13c_temperature_reduction(
    settings: Optional[ExperimentSettings] = None,
    rates: Optional[Tuple[float, ...]] = None,
    short_fraction: float = 0.50,
    config: Optional[ArchitectureConfig] = None,
    store: Optional[ResultStore] = None,
    analytic_split: bool = False,
) -> Dict[float, float]:
    """Fig. 13c: average temperature drop of 3DM with 50% short flits.

    For each injection rate, the same UR workload is simulated with 0%
    short flits (shutdown moot) and with ``short_fraction`` short flits
    (shutdown active); the simulated per-node-per-layer router power
    maps feed the thermal solver and the average-temperature difference
    is reported.  ``analytic_split=True`` (the CLI's
    ``--analytic-shutdown``) falls back to flat per-node powers split by
    the constant floorplan layer plan instead of the simulated maps.
    """
    settings = settings or ExperimentSettings.from_env()
    config = config or make_3dm()
    if rates is None:
        rates = tuple(settings.uniform_rates[:3])
    out: Dict[float, float] = {}
    for rate in rates:
        base = cached_point_run(
            store,
            PointSpec(config, "uniform", rate, shutdown_enabled=True),
            settings,
        )
        gated = cached_point_run(
            store,
            PointSpec(
                config, "uniform", rate,
                short_flit_fraction=short_fraction, shutdown_enabled=True,
            ),
            settings,
        )
        if analytic_split:
            out[rate] = temperature_drop(
                config,
                base.router_power_per_node(),
                gated.router_power_per_node(),
            )
        else:
            out[rate] = temperature_drop(
                config,
                router_layer_power_base_w=base.router_layer_power_per_node(),
                router_layer_power_reduced_w=(
                    gated.router_layer_power_per_node()
                ),
            )
    return out
