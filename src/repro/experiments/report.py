"""Plain-text rendering of experiment results.

Every harness returns data; these helpers print it in the shape the paper
presents (table rows / labelled series), so benchmark logs read like the
paper's evaluation section.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.experiments.runner import PointResult


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned fixed-width table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}" if abs(cell) < 100 else f"{cell:,.0f}"
    return str(cell)


def sweep_table(
    sweep: Dict[str, List[Tuple[float, PointResult]]],
    metric: str = "avg_latency",
    x_label: str = "rate",
) -> str:
    """Render a rate sweep (Figs. 11a/11b/12a/12b) as one table.

    ``metric`` is any PointResult property name (``avg_latency``,
    ``total_power_w``, ``avg_hops``, ``pdp``).
    """
    arches = list(sweep)
    rates = [x for x, _ in sweep[arches[0]]]
    headers = [x_label] + arches
    rows = []
    for i, rate in enumerate(rates):
        row: List[object] = [f"{rate:g}"]
        for arch in arches:
            row.append(getattr(sweep[arch][i][1], metric))
        rows.append(row)
    return format_table(headers, rows)


def normalized_table(
    results: Dict[str, Dict[str, PointResult]],
    metric: str = "avg_latency",
    baseline: str = "2DB",
) -> str:
    """Render workload x arch results normalised to *baseline*
    (Figs. 11c, 12c)."""
    workloads = list(results)
    arches = list(results[workloads[0]])
    headers = ["workload"] + arches
    rows = []
    for workload in workloads:
        base = getattr(results[workload][baseline], metric)
        row: List[object] = [workload]
        for arch in arches:
            value = getattr(results[workload][arch], metric)
            row.append(value / base if base else 0.0)
        rows.append(row)
    return format_table(headers, rows)


def dict_table(
    data: Dict[str, Dict[str, float]], row_label: str = "name"
) -> str:
    """Render a nested dict (e.g. Fig. 1 / Fig. 9 breakdowns)."""
    rows_keys = list(data)
    col_keys = list(data[rows_keys[0]])
    headers = [row_label] + col_keys
    rows = [[rk] + [data[rk][ck] for ck in col_keys] for rk in rows_keys]
    return format_table(headers, rows)
