"""Express-channel and routing-path analysis (Sec. 3.3, Fig. 11d).

Walks the deterministic routing functions to compute exact paths and
average hop counts, which back the paper's hop-count comparison: 2DB and
3DM share hop counts, 3DM-E has the fewest thanks to express channels,
and 3DB suffers under layout-constrained (NUCA) traffic because CPU-cache
pairs always cross the vertical dimension.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.noc.routing import RoutingFunction, routing_for_topology
from repro.topology.base import LOCAL_PORT, Topology


def route_path(
    topology: Topology,
    src: int,
    dst: int,
    routing: Optional[RoutingFunction] = None,
) -> List[int]:
    """Node sequence a packet visits from *src* to *dst* inclusive.

    Raises if the routing function livelocks (visits more nodes than the
    network holds), which would indicate a broken routing/topology pair.
    """
    routing = routing or routing_for_topology(topology)
    path = [src]
    node = src
    while node != dst:
        port = routing.output_port(node, dst)
        if port == LOCAL_PORT:
            raise RuntimeError(f"routing stalled at node {node} before {dst}")
        link = topology.out_ports[node][port]
        node = link.dst
        path.append(node)
        if len(path) > topology.num_nodes + 1:
            raise RuntimeError(f"routing livelock from {src} to {dst}")
    return path


def hop_count(
    topology: Topology,
    src: int,
    dst: int,
    routing: Optional[RoutingFunction] = None,
) -> int:
    """Channels traversed from *src* to *dst* under the routing function."""
    return len(route_path(topology, src, dst, routing)) - 1


def average_hops(
    topology: Topology,
    pairs: Optional[Iterable[Tuple[int, int]]] = None,
    routing: Optional[RoutingFunction] = None,
) -> float:
    """Mean hop count over *pairs* (default: all ordered pairs).

    For NUCA hop counts pass the CPU-to-cache and cache-to-CPU pairs.
    """
    routing = routing or routing_for_topology(topology)
    if pairs is None:
        pairs = (
            (s, d)
            for s in range(topology.num_nodes)
            for d in range(topology.num_nodes)
            if s != d
        )
    total = 0
    count = 0
    for src, dst in pairs:
        total += hop_count(topology, src, dst, routing)
        count += 1
    if count == 0:
        raise ValueError("no src/dst pairs supplied")
    return total / count


def nuca_pairs(
    cpu_nodes: Sequence[int], cache_nodes: Sequence[int]
) -> List[Tuple[int, int]]:
    """All request and response pairs of a NUCA layout."""
    pairs = [(c, b) for c in cpu_nodes for b in cache_nodes]
    pairs += [(b, c) for c in cpu_nodes for b in cache_nodes]
    return pairs
