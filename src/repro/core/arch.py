"""The evaluated router architectures as buildable configurations.

Six configurations appear in the paper's evaluation (Sec. 4):

======== =========================================================
2DB      6x6 2D mesh of conventional 5-port routers (Fig. 3a)
3DB      3x3x4 3D mesh of 7-port routers, CPUs pinned to the top
         layer for thermal reasons (Figs. 3b, 10c)
3DM      6x6 mesh of 4-layer stacked routers; quarter-size
         crossbars and half-length links allow the ST and LT
         pipeline stages to merge (Figs. 3c, 8d)
3DM(NC)  3DM without the pipeline merge (ablation)
3DM-E    3DM plus span-2 express channels bought with the spare
         link bandwidth (Sec. 3.3, Fig. 7)
3DM-E(NC) 3DM-E without the pipeline merge (ablation)
======== =========================================================

A configuration knows its topology, geometry (pitches, radix, layer
count), node roles (CPU vs cache placement, Fig. 10) and whether the
timing model permits the single-stage switch+link traversal; it can build
ready-to-run :class:`~repro.noc.network.Network` instances.

Beyond the paper's six, the library ships three more fabrics riding on
the generic topology substrate — :data:`Architecture.RING`,
:data:`Architecture.CHIPLET` and :data:`Architecture.IRREGULAR` — each a
multi-layered MIRA-style router design applied to a non-mesh graph and
routed by precomputed deadlock-free tables
(:class:`~repro.noc.table_routing.TableRouting`).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.noc.network import Network
from repro.timing.delay import can_combine_st_lt
from repro.topology.base import Topology
from repro.topology.chiplet import ChipletMesh
from repro.topology.express_mesh import ExpressMesh
from repro.topology.irregular import IrregularTopology
from repro.topology.mesh2d import Mesh2D
from repro.topology.mesh3d import Mesh3D
from repro.topology.ring import Ring

#: Tile pitch of a planar (2DB/3DB) layout, mm (Table 2: ~3.1 mm).
PLANAR_PITCH_MM = 3.16
#: Tile pitch of the quarter-footprint multi-layer layout, mm (Table 2).
MULTILAYER_PITCH_MM = 1.58
#: Stacked silicon layers in all 3D designs.
DEFAULT_LAYERS = 4
#: Flit width in bits (Sec. 3.2.1).
DEFAULT_FLIT_BITS = 128
#: Virtual channels per physical channel (Sec. 3.2.4).
DEFAULT_VCS = 2
#: Buffer depth in flits per VC (Sec. 3.2.1: "8 lines for 8 buffers").
DEFAULT_BUFFER_DEPTH = 8


def _file_digest(path: str) -> str:
    with open(path, "rb") as fh:
        return hashlib.sha256(fh.read()).hexdigest()


class Architecture(enum.Enum):
    """The paper's six configurations plus the substrate fabrics."""

    BASELINE_2D = "2DB"
    BASELINE_3D = "3DB"
    MIRA_3DM = "3DM"
    MIRA_3DM_NC = "3DM(NC)"
    MIRA_3DM_E = "3DM-E"
    MIRA_3DM_E_NC = "3DM-E(NC)"
    #: Multi-layered routers on a bidirectional ring (table-routed).
    RING = "RING"
    #: Multi-layered routers on a tile mesh with centered IO hub nodes.
    CHIPLET = "CHIPLET"
    #: Multi-layered routers on a JSON-defined irregular graph.
    IRREGULAR = "IRREG"


@dataclass(frozen=True)
class ArchitectureConfig:
    """A fully specified, buildable router architecture."""

    arch: Architecture
    #: Stacked silicon layers the router data path spans.
    layers: int
    #: Design radix: physical ports of the full (interior) router.
    ports: int
    #: Flit width in bits.
    flit_bits: int
    #: Virtual channels per physical channel.
    vcs: int
    #: Buffer depth in flits per VC.
    buffer_depth: int
    #: Tile pitch = normal inter-router link length, mm.
    pitch_mm: float
    #: Longest link in the design (express span x pitch for 3DM-E), mm.
    max_link_mm: float
    #: Merge switch traversal and link traversal into one stage.
    combined_st_lt: bool
    #: Mesh dimensions: (width, height) or (width, height, depth).
    dims: Tuple[int, ...]
    #: Express channel span in hops (0 = no express channels).
    express_span: int = 0
    #: Fig. 8b: speculative switch allocation overlapping VA.
    speculative_sa: bool = False
    #: Fig. 8c: look-ahead routing (route computed one hop in advance).
    lookahead_rc: bool = False
    #: Node ids hosting processor cores (Fig. 10 placements).
    cpu_nodes: Tuple[int, ...] = field(default_factory=tuple)
    #: Node ids hosting L2 cache banks.
    cache_nodes: Tuple[int, ...] = field(default_factory=tuple)
    #: Nodes beyond the dims product (chiplet hubs); 0 for grids.
    extra_nodes: int = 0
    #: JSON link-list file for IRREGULAR fabrics ("" otherwise).
    topology_file: str = ""
    #: sha256 of the topology file at config-build time ("" = unchecked).
    topology_digest: str = ""

    @property
    def name(self) -> str:
        return self.arch.value

    @property
    def num_nodes(self) -> int:
        n = 1
        for d in self.dims:
            n *= d
        return n + self.extra_nodes

    @property
    def is_multilayer(self) -> bool:
        """True for the self-stacked (3DM-family) router designs."""
        return self.arch in (
            Architecture.MIRA_3DM,
            Architecture.MIRA_3DM_NC,
            Architecture.MIRA_3DM_E,
            Architecture.MIRA_3DM_E_NC,
            Architecture.RING,
            Architecture.CHIPLET,
            Architecture.IRREGULAR,
        )

    @property
    def datapath_layers(self) -> int:
        """Layers the router *data path* spans (1 for 2DB/3DB)."""
        return self.layers if self.is_multilayer else 1

    def build_topology(self) -> Topology:
        """Construct a fresh topology instance."""
        if self.arch is Architecture.BASELINE_3D:
            width, height, depth = self.dims
            return Mesh3D(width, height, depth, pitch_mm=self.pitch_mm)
        if self.arch is Architecture.RING:
            return Ring(self.dims[0], pitch_mm=self.pitch_mm)
        if self.arch is Architecture.CHIPLET:
            width, height = self.dims
            return ChipletMesh(
                width, height, self.pitch_mm, hubs=self.extra_nodes
            )
        if self.arch is Architecture.IRREGULAR:
            if not self.topology_file:
                raise ValueError("IRREGULAR config has no topology_file")
            if self.topology_digest:
                digest = _file_digest(self.topology_file)
                if digest != self.topology_digest:
                    raise ValueError(
                        f"topology file {self.topology_file} changed since "
                        f"the config was built (sha256 {digest[:12]} != "
                        f"{self.topology_digest[:12]})"
                    )
            return IrregularTopology.from_json(self.topology_file)
        width, height = self.dims
        if self.express_span:
            return ExpressMesh(width, height, self.pitch_mm, span=self.express_span)
        return Mesh2D(width, height, self.pitch_mm)

    def build_network(self, shutdown_enabled: bool = False) -> Network:
        """Construct a ready-to-run network for this architecture."""
        return Network(
            topology=self.build_topology(),
            num_vcs=self.vcs,
            buffer_depth=self.buffer_depth,
            combined_st_lt=self.combined_st_lt,
            layer_groups=4,
            shutdown_enabled=shutdown_enabled,
            speculative_sa=self.speculative_sa,
            lookahead_rc=self.lookahead_rc,
        )

    def with_pipeline_options(
        self, speculative_sa: bool = False, lookahead_rc: bool = False
    ) -> "ArchitectureConfig":
        """Variant of this design using the advanced pipelines of
        Fig. 8b (speculative SA) / Fig. 8c (look-ahead routing)."""
        return dataclasses.replace(
            self, speculative_sa=speculative_sa, lookahead_rc=lookahead_rc
        )


def _middle_block_nodes(width: int, height: int, count: int) -> List[int]:
    """Spread *count* CPU tiles over the central rows of a 2D mesh
    (Fig. 10a/10b: processors sit in the middle of the network)."""
    if count > width * height:
        raise ValueError("more CPUs than tiles")
    rows_needed = (count + width - 3) // max(1, width - 2)
    nodes: List[int] = []
    y0 = max(0, (height - rows_needed) // 2)
    x0 = 1 if width > 2 else 0
    x_limit = width - 1 if width > 2 else width
    y = y0
    while len(nodes) < count and y < height:
        x = x0
        while len(nodes) < count and x < x_limit:
            nodes.append(y * width + x)
            x += 1
        y += 1
    if len(nodes) < count:  # tiny meshes: fall back to row-major fill
        taken = set(nodes)
        for n in range(width * height):
            if len(nodes) >= count:
                break
            if n not in taken:
                nodes.append(n)
    return nodes


def _top_layer_nodes(width: int, height: int, depth: int, count: int) -> List[int]:
    """First *count* tiles of the top layer (closest to the heat sink),
    where the 3DB layout must keep all processors (Fig. 10c)."""
    plane = width * height
    if count > plane:
        raise ValueError("more CPUs than top-layer tiles")
    top_base = (depth - 1) * plane
    return [top_base + i for i in range(count)]


def make_2db(
    width: int = 6, height: int = 6, num_cpus: int = 8
) -> ArchitectureConfig:
    """The 2D baseline: conventional 5-port mesh routers."""
    cpus = _middle_block_nodes(width, height, num_cpus)
    caches = [n for n in range(width * height) if n not in set(cpus)]
    return ArchitectureConfig(
        arch=Architecture.BASELINE_2D,
        layers=1,
        ports=5,
        flit_bits=DEFAULT_FLIT_BITS,
        vcs=DEFAULT_VCS,
        buffer_depth=DEFAULT_BUFFER_DEPTH,
        pitch_mm=PLANAR_PITCH_MM,
        max_link_mm=PLANAR_PITCH_MM,
        combined_st_lt=False,
        dims=(width, height),
        cpu_nodes=tuple(cpus),
        cache_nodes=tuple(caches),
    )


def _spread_layer_nodes(
    width: int, height: int, depth: int, count: int
) -> List[int]:
    """CPUs distributed round-robin across layers (one per pillar step).

    The thermally *bad* placement the paper rejects (Sec. 3.1) — spreading
    the hot cores shortens average CPU-cache distance but stacks power
    density away from the heat sink.  Kept as an ablation option.
    """
    plane = width * height
    if count > plane * depth:
        raise ValueError("more CPUs than tiles")
    nodes = []
    for i in range(count):
        layer = i % depth
        pillar = (i * 2 + 1) % plane  # scatter within the plane
        nodes.append(layer * plane + pillar)
    if len(set(nodes)) != count:  # fall back to a dense scatter
        nodes = [
            (i % depth) * plane + (i // depth) % plane for i in range(count)
        ]
    return sorted(set(nodes))[:count]


def make_3db(
    width: int = 3,
    height: int = 3,
    depth: int = 4,
    num_cpus: int = 8,
    cpu_placement: str = "top",
) -> ArchitectureConfig:
    """The naive stacked 3D baseline: 7-port routers.

    ``cpu_placement`` is ``"top"`` (the paper's thermally-safe choice,
    Fig. 10c) or ``"spread"`` (CPUs distributed over the layers — better
    NUCA hop counts, worse power density; the ablation in
    :mod:`repro.experiments.ablations`).
    """
    if cpu_placement == "top":
        cpus = _top_layer_nodes(width, height, depth, num_cpus)
    elif cpu_placement == "spread":
        cpus = _spread_layer_nodes(width, height, depth, num_cpus)
    else:
        raise ValueError(
            f"cpu_placement must be 'top' or 'spread', got {cpu_placement!r}"
        )
    caches = [n for n in range(width * height * depth) if n not in set(cpus)]
    return ArchitectureConfig(
        arch=Architecture.BASELINE_3D,
        layers=depth,
        ports=7,
        flit_bits=DEFAULT_FLIT_BITS,
        vcs=DEFAULT_VCS,
        buffer_depth=DEFAULT_BUFFER_DEPTH,
        pitch_mm=PLANAR_PITCH_MM,
        max_link_mm=PLANAR_PITCH_MM,
        combined_st_lt=False,
        dims=(width, height, depth),
        cpu_nodes=tuple(cpus),
        cache_nodes=tuple(caches),
    )


def _multilayer_config(
    arch: Architecture,
    width: int,
    height: int,
    num_cpus: int,
    express_span: int,
    nc: bool,
) -> ArchitectureConfig:
    ports = 9 if express_span else 5
    max_link = MULTILAYER_PITCH_MM * (express_span if express_span else 1)
    combinable = can_combine_st_lt(
        ports=ports,
        flit_bits=DEFAULT_FLIT_BITS,
        layers=DEFAULT_LAYERS,
        link_length_mm=max_link,
    )
    cpus = _middle_block_nodes(width, height, num_cpus)
    caches = [n for n in range(width * height) if n not in set(cpus)]
    return ArchitectureConfig(
        arch=arch,
        layers=DEFAULT_LAYERS,
        ports=ports,
        flit_bits=DEFAULT_FLIT_BITS,
        vcs=DEFAULT_VCS,
        buffer_depth=DEFAULT_BUFFER_DEPTH,
        pitch_mm=MULTILAYER_PITCH_MM,
        max_link_mm=max_link,
        combined_st_lt=combinable and not nc,
        dims=(width, height),
        express_span=express_span,
        cpu_nodes=tuple(cpus),
        cache_nodes=tuple(caches),
    )


def make_3dm(
    width: int = 6, height: int = 6, num_cpus: int = 8, nc: bool = False
) -> ArchitectureConfig:
    """The multi-layered MIRA router (optionally the NC ablation)."""
    arch = Architecture.MIRA_3DM_NC if nc else Architecture.MIRA_3DM
    return _multilayer_config(arch, width, height, num_cpus, express_span=0, nc=nc)


def make_3dme(
    width: int = 6,
    height: int = 6,
    num_cpus: int = 8,
    span: int = 2,
    nc: bool = False,
) -> ArchitectureConfig:
    """MIRA with express channels (optionally the NC ablation)."""
    arch = Architecture.MIRA_3DM_E_NC if nc else Architecture.MIRA_3DM_E
    return _multilayer_config(arch, width, height, num_cpus, express_span=span, nc=nc)


def _evenly_spaced_nodes(num_nodes: int, count: int) -> List[int]:
    """CPU ids spread uniformly around coordinate-free fabrics."""
    if count > num_nodes:
        raise ValueError("more CPUs than nodes")
    return [(i * num_nodes) // count for i in range(count)]


def _fabric_config(
    arch: Architecture,
    topology: Topology,
    dims: Tuple[int, ...],
    cpus: List[int],
    *,
    extra_nodes: int = 0,
    pitch_mm: float = MULTILAYER_PITCH_MM,
    topology_file: str = "",
    topology_digest: str = "",
) -> ArchitectureConfig:
    """MIRA-style multi-layer router parameters on a substrate fabric.

    Radix follows the fabric's widest router; the ST+LT merge is decided
    by the same timing query as the 3DM family, against the fabric's
    longest wire.
    """
    ports = topology.max_radix()
    max_link = max(link.length_mm for link in topology.links)
    combinable = can_combine_st_lt(
        ports=ports,
        flit_bits=DEFAULT_FLIT_BITS,
        layers=DEFAULT_LAYERS,
        link_length_mm=max_link,
    )
    caches = [n for n in range(topology.num_nodes) if n not in set(cpus)]
    return ArchitectureConfig(
        arch=arch,
        layers=DEFAULT_LAYERS,
        ports=ports,
        flit_bits=DEFAULT_FLIT_BITS,
        vcs=DEFAULT_VCS,
        buffer_depth=DEFAULT_BUFFER_DEPTH,
        pitch_mm=pitch_mm,
        max_link_mm=max_link,
        combined_st_lt=combinable,
        dims=dims,
        cpu_nodes=tuple(cpus),
        cache_nodes=tuple(caches),
        extra_nodes=extra_nodes,
        topology_file=topology_file,
        topology_digest=topology_digest,
    )


def make_ring(num_nodes: int = 16, num_cpus: int = 8) -> ArchitectureConfig:
    """Multi-layered routers on a bidirectional ring."""
    topology = Ring(num_nodes, MULTILAYER_PITCH_MM)
    cpus = _evenly_spaced_nodes(num_nodes, num_cpus)
    return _fabric_config(Architecture.RING, topology, (num_nodes,), cpus)


def make_chiplet(
    width: int = 6, height: int = 6, hubs: int = 2, num_cpus: int = 8
) -> ArchitectureConfig:
    """Multi-layered routers on a hub-augmented chiplet mesh.

    CPUs keep the Fig. 10 middle-block placement on the tile grid; the
    IO hubs join the cache side of the NUCA traffic split.
    """
    topology = ChipletMesh(width, height, MULTILAYER_PITCH_MM, hubs=hubs)
    cpus = _middle_block_nodes(width, height, num_cpus)
    return _fabric_config(
        Architecture.CHIPLET,
        topology,
        (width, height),
        cpus,
        extra_nodes=hubs,
    )


def make_irregular(topology_file: str, num_cpus: int = 8) -> ArchitectureConfig:
    """Multi-layered routers on a JSON-defined irregular graph.

    The file's sha256 is pinned into the config so cached experiment
    results can never silently refer to an edited graph.
    """
    topology = IrregularTopology.from_json(topology_file)
    cpus = _evenly_spaced_nodes(
        topology.num_nodes, min(num_cpus, topology.num_nodes)
    )
    return _fabric_config(
        Architecture.IRREGULAR,
        topology,
        (topology.num_nodes,),
        cpus,
        topology_file=str(topology_file),
        topology_digest=_file_digest(str(topology_file)),
    )


def make_architecture(arch: Architecture, **kwargs) -> ArchitectureConfig:
    """Factory keyed on the :class:`Architecture` enum."""
    if arch is Architecture.BASELINE_2D:
        return make_2db(**kwargs)
    if arch is Architecture.BASELINE_3D:
        return make_3db(**kwargs)
    if arch is Architecture.MIRA_3DM:
        return make_3dm(**kwargs)
    if arch is Architecture.MIRA_3DM_NC:
        return make_3dm(nc=True, **kwargs)
    if arch is Architecture.MIRA_3DM_E:
        return make_3dme(**kwargs)
    if arch is Architecture.MIRA_3DM_E_NC:
        return make_3dme(nc=True, **kwargs)
    if arch is Architecture.RING:
        return make_ring(**kwargs)
    if arch is Architecture.CHIPLET:
        return make_chiplet(**kwargs)
    if arch is Architecture.IRREGULAR:
        if "topology_file" not in kwargs:
            raise ValueError(
                "IRREGULAR needs a topology_file (JSON link list)"
            )
        return make_irregular(**kwargs)
    raise ValueError(f"unknown architecture: {arch}")


def standard_configs(include_nc: bool = True) -> List[ArchitectureConfig]:
    """The paper's evaluated configurations in presentation order."""
    archs = [Architecture.BASELINE_2D, Architecture.BASELINE_3D]
    if include_nc:
        archs += [
            Architecture.MIRA_3DM_NC,
            Architecture.MIRA_3DM,
            Architecture.MIRA_3DM_E_NC,
            Architecture.MIRA_3DM_E,
        ]
    else:
        archs += [Architecture.MIRA_3DM, Architecture.MIRA_3DM_E]
    return [make_architecture(a) for a in archs]


def fabric_configs() -> List[ArchitectureConfig]:
    """The cross-fabric comparison set: mesh vs ring vs chiplet.

    All three carry identical multi-layer router parameters, so the
    ``fig_topology`` experiment isolates the fabric's contribution to
    the layer-shutdown power opportunity.
    """
    return [make_3dm(), make_ring(num_nodes=36), make_chiplet()]
