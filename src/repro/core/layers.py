"""Multi-layer partitioning of the router (Sec. 3.2).

MIRA classifies router modules as *separable* (input buffers, crossbar,
inter-router links: sliced per-bit across layers) or *non-separable*
(routing and arbitration logic: kept whole).  The placement rules
(Sec. 3.2.7):

* RC, SA (both stages) and VA stage 1 live in the top layer, closest to
  the heat sink — SA switches every flit, so it runs hottest.
* VA stage 2 (the big PV:1 arbiters) is spread evenly over the bottom
  ``L-1`` layers.
* The crossbar and buffers are sliced evenly across all ``L`` layers.

The inter-layer via budget follows Table 1: ``2P + PV + Vk`` signal vias
per router (crossbar enables, VA2 request distribution, buffer word
lines), each on a 5x5 um TSV pad.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.arch import ArchitectureConfig

#: TSV pad edge (um), from the paper's technology parameters [38].
VIA_PITCH_UM = 5.0
VIA_AREA_UM2 = VIA_PITCH_UM * VIA_PITCH_UM

#: Module classification (Sec. 3.2).
SEPARABLE_MODULES = ("buffer", "crossbar", "link")
NON_SEPARABLE_MODULES = ("rc", "va1", "va2", "sa1", "sa2")


@dataclass(frozen=True)
class LayerPlan:
    """Placement of router modules onto stacked layers.

    ``placement[module]`` lists the layers (0 = top, closest to the heat
    sink) holding a slice of that module.
    """

    layers: int
    placement: Dict[str, Tuple[int, ...]]
    total_vias: int

    def modules_on_layer(self, layer: int) -> List[str]:
        if not 0 <= layer < self.layers:
            raise ValueError(f"layer {layer} out of range")
        return sorted(m for m, ls in self.placement.items() if layer in ls)

    def via_area_um2(self) -> float:
        return self.total_vias * VIA_AREA_UM2


def signal_vias(ports: int, vcs: int, buffer_depth: int) -> int:
    """Inter-layer signal vias per router (Table 1: ``2P + PV + Vk``)."""
    if min(ports, vcs, buffer_depth) < 1:
        raise ValueError("ports, vcs and buffer_depth must be >= 1")
    return 2 * ports + ports * vcs + vcs * buffer_depth


def layer_plan_for(config: ArchitectureConfig) -> LayerPlan:
    """The layer plan of Sec. 3.2.7 for *config*.

    Single-layer designs (2DB, 3DB) trivially place everything on layer 0
    and need no signal vias for router-internal partitioning (the 3DB
    design does spend ``W`` vias per vertical *link*, accounted by the
    area model, not here).
    """
    L = config.datapath_layers
    if L == 1:
        placement = {m: (0,) for m in SEPARABLE_MODULES + NON_SEPARABLE_MODULES}
        return LayerPlan(layers=1, placement=placement, total_vias=0)

    all_layers = tuple(range(L))
    bottom_layers = tuple(range(1, L))
    placement = {
        "rc": (0,),
        "sa1": (0,),
        "sa2": (0,),
        "va1": (0,),
        "va2": bottom_layers,
        "buffer": all_layers,
        "crossbar": all_layers,
        "link": all_layers,
    }
    return LayerPlan(
        layers=L,
        placement=placement,
        total_vias=signal_vias(config.ports, config.vcs, config.buffer_depth),
    )
