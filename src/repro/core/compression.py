"""Frequent-pattern compression (FPC) as an alternative to layer shutdown.

MIRA exploits frequent data patterns by *gating* the layers that carry
redundant words (Sec. 3.2.1).  The study it builds on — Alameldeen &
Wood's Frequent Pattern Compression [18] — instead *compresses* the data,
which on a NoC shortens packets.  This module implements FPC encoding at
the flit level so the two techniques can be compared head-to-head (an
extension the paper does not evaluate):

* shutdown keeps 5-flit packets but discounts separable energy on short
  flits;
* compression shrinks packets to 2–5 flits (fewer buffer writes, switch
  and link traversals, and less serialisation latency) at the cost of
  (de)compression latency at the endpoints and dense — ungateable —
  payload flits.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.traffic.patterns import (
    PatternKind,
    WORDS_PER_LINE,
    classify_word,
)
from repro.traffic.traces import TraceRecord

#: FPC prefix bits per word.
PREFIX_BITS = 3

#: Encoded payload bits per pattern class (prefix + residue).
ENCODED_BITS = {
    PatternKind.ZERO: PREFIX_BITS,
    PatternKind.ONE: PREFIX_BITS,
    PatternKind.SIGN8: PREFIX_BITS + 8,
    PatternKind.SIGN16: PREFIX_BITS + 16,
    PatternKind.REPEATED: PREFIX_BITS + 8,
    PatternKind.RANDOM: PREFIX_BITS + 32,
}

#: Pipeline latency of the (de)compressor at each endpoint, cycles.  FPC
#: reports a small fixed pipeline; two cycles per side is conservative.
COMPRESSION_LATENCY_CYCLES = 2


def fpc_encoded_bits(words: Sequence[int]) -> int:
    """Encoded size of a cache line in bits."""
    if len(words) != WORDS_PER_LINE:
        raise ValueError(f"a cache line has {WORDS_PER_LINE} words")
    return sum(ENCODED_BITS[classify_word(w)] for w in words)


def compressed_payload_flits(words: Sequence[int], flit_bits: int = 128) -> int:
    """Payload flits a compressed line occupies (1..4).

    A line that does not compress below its raw size is sent raw (the
    FPC rule), so the count never exceeds the uncompressed four flits.
    """
    bits = min(fpc_encoded_bits(words), WORDS_PER_LINE * 32)
    return max(1, min(4, math.ceil(bits / flit_bits)))


def compression_ratio(words: Sequence[int]) -> float:
    """Raw bits over encoded bits (>= 1 thanks to the raw fallback)."""
    raw = WORDS_PER_LINE * 32
    return raw / min(fpc_encoded_bits(words), raw)


def compress_record(record: TraceRecord, flit_bits: int = 128) -> TraceRecord:
    """Rewrite a data-packet trace record as its FPC-compressed form.

    The per-flit ``payload_groups`` of the raw record encode which word
    groups were redundant; compression packs the live words densely, so
    the compressed flit count is derived from the *live* payload volume
    and every surviving payload flit is dense (``4`` active groups —
    nothing left for the shutdown detector to gate).
    """
    if record.payload_groups is None:
        return record  # control packets are already minimal
    # Live 32-bit word groups across the four payload flits; redundant
    # groups compress to prefix-only codes (negligible, rounded in).
    live_groups = sum(record.payload_groups[1:])
    payload_bits = live_groups * 32 + WORDS_PER_LINE * PREFIX_BITS
    payload_bits = min(payload_bits, WORDS_PER_LINE * 32)
    flits = max(1, min(4, math.ceil(payload_bits / flit_bits)))
    groups = tuple([1] + [4] * flits)
    return TraceRecord(
        cycle=record.cycle + COMPRESSION_LATENCY_CYCLES,
        src=record.src,
        dst=record.dst,
        klass=record.klass,
        payload_groups=groups,
    )


def compress_trace(
    records: Sequence[TraceRecord], flit_bits: int = 128
) -> List[TraceRecord]:
    """FPC-compress every data packet of a trace."""
    out = [compress_record(r, flit_bits) for r in records]
    out.sort(key=lambda r: r.cycle)
    return out
