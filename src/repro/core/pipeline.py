"""Router pipeline organisations (Fig. 8).

A conventional on-chip router takes four pipeline stages — routing
computation (RC), virtual-channel allocation (VA), switch allocation (SA)
and switch traversal (ST) — plus a link-traversal (LT) cycle between
routers.  MIRA's structural shrink lets ST and LT share one stage
(Fig. 8d), making each hop one cycle cheaper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.arch import ArchitectureConfig


@dataclass(frozen=True)
class PipelineSpec:
    """Stage plan for head flits plus the implied per-hop latency."""

    stages: Tuple[str, ...]

    @property
    def depth(self) -> int:
        """Pipeline stages inside the router (LT excluded if merged)."""
        return len(self.stages)

    @property
    def cycles_per_hop(self) -> int:
        """Cycles a head flit spends from RC at one router to RC at the
        next (each stage, merged or not, is one cycle)."""
        return len(self.stages)


#: Fig. 8a: the conventional organisation used by 2DB, 3DB and NC designs.
FOUR_STAGE_PLUS_LT = PipelineSpec(("RC", "VA", "SA", "ST", "LT"))
#: Fig. 8b: speculative switch allocation overlaps VA.
THREE_STAGE_SPECULATIVE = PipelineSpec(("RC", "VA|SSA", "ST", "LT"))
#: Fig. 8c: look-ahead routing moves RC off the critical path too.
TWO_STAGE_LOOKAHEAD = PipelineSpec(("NRC|VA|SSA", "ST", "LT"))
#: Fig. 8d: MIRA's organisation with ST and LT sharing a stage.
MERGED_ST_LT = PipelineSpec(("RC", "VA", "SA", "ST+LT"))


def pipeline_for(config: ArchitectureConfig) -> PipelineSpec:
    """Pipeline spec implied by an architecture configuration.

    The advanced pipelines compose with the MIRA ST+LT merge: each
    removed stage drops one cycle per hop.
    """
    stages = []
    if config.lookahead_rc and config.speculative_sa:
        stages = ["NRC|VA|SSA"]
    elif config.speculative_sa:
        stages = ["RC", "VA|SSA"]
    elif config.lookahead_rc:
        stages = ["NRC|VA", "SA"]
    else:
        stages = ["RC", "VA", "SA"]
    if config.combined_st_lt:
        stages.append("ST+LT")
    else:
        stages += ["ST", "LT"]
    return PipelineSpec(tuple(stages))
