"""MIRA core: the paper's router architectures and layering techniques.

This package holds the primary contribution of the paper:

* :mod:`repro.core.arch` — the four evaluated router architectures (2DB,
  3DB, 3DM, 3DM-E) plus the no-pipeline-combining (NC) variants, as
  buildable configurations.
* :mod:`repro.core.pipeline` — the router pipeline organisations (Fig. 8).
* :mod:`repro.core.layers` — the multi-layer partitioning plan: which
  modules are separable across layers, where each module lives, and the
  through-silicon-via budget (Table 1).
* :mod:`repro.core.shutdown` — short-flit detection and the dynamic
  layer-shutdown power model (Secs. 3.2.1, 4.2.2).
* :mod:`repro.core.express` — express-channel analysis helpers (Sec. 3.3).
"""

from repro.core.arch import (
    Architecture,
    ArchitectureConfig,
    make_2db,
    make_3db,
    make_3dm,
    make_3dme,
    make_architecture,
    standard_configs,
)
from repro.core.pipeline import PipelineSpec, pipeline_for
from repro.core.layers import LayerPlan, layer_plan_for
from repro.core.shutdown import ShortFlitDetector, shutdown_power_factor
from repro.core.express import average_hops, route_path
from repro.core.fault import (
    FaultTolerantExpressRouting,
    UnroutableError,
    build_fault_tolerant_network,
    single_failure_coverage,
)

__all__ = [
    "Architecture",
    "ArchitectureConfig",
    "make_2db",
    "make_3db",
    "make_3dm",
    "make_3dme",
    "make_architecture",
    "standard_configs",
    "PipelineSpec",
    "pipeline_for",
    "LayerPlan",
    "layer_plan_for",
    "ShortFlitDetector",
    "shutdown_power_factor",
    "average_hops",
    "route_path",
    "FaultTolerantExpressRouting",
    "UnroutableError",
    "build_fault_tolerant_network",
    "single_failure_coverage",
]
