"""Fault tolerance via redundant express channels (Sec. 3.3).

The paper notes that 3DM's spare link bandwidth can buy an extra physical
channel per direction and suggests fault tolerance as one use.  This
module implements that idea: with both a normal and an express channel in
every (interior) direction, a failed channel can be bypassed by its
sibling:

* a failed *express* channel degrades to the normal channel (always
  minimal);
* a failed *normal* channel is bypassed by the express channel — minimal
  when the remaining distance covers the span, otherwise a bounded
  overshoot-and-return (one extra hop).

Routing stays deterministic and dimension-ordered; the overshoot turn is
the only non-minimal step and only occurs adjacent to a failed link, so
under the single-failure model evaluated here the channel-dependency
cycle needed for deadlock cannot close (the sims in the tests/benches
back this empirically).  Edge nodes without an express sibling cannot be
bypassed; :func:`single_failure_coverage` quantifies exactly how much of
the failure space the topology tolerates.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple

from repro.core.arch import ArchitectureConfig
from repro.noc.network import Network
from repro.noc.routing import RoutingBase, UnroutableError
from repro.topology.base import LOCAL_PORT, LinkKind
from repro.topology.express_mesh import EXPRESS_FOR, ExpressMesh
from repro.topology.mesh2d import EAST, NORTH, SOUTH, WEST

#: A directed channel identified by (source node, destination node).
Channel = Tuple[int, int]

__all__ = [
    "Channel",
    "UnroutableError",  # defined in repro.noc.routing; re-exported here
    "FaultTolerantExpressRouting",
    "both_directions",
    "build_fault_tolerant_network",
    "routable_under",
    "single_failure_coverage",
]


def both_directions(src: int, dst: int) -> Set[Channel]:
    """The two directed channels of a full-duplex link."""
    return {(src, dst), (dst, src)}


class FaultTolerantExpressRouting(RoutingBase):
    """Express-mesh X-Y routing that steers around failed channels.

    The failure set is mutable so a runtime
    :class:`~repro.resilience.faults.FaultInjector` can grow it
    mid-simulation via :meth:`fail_channel`; the routing function reacts
    from the next RC computation on.
    """

    def __init__(
        self, topology: ExpressMesh, failed: Iterable[Channel] = ()
    ) -> None:
        self.topology = topology
        self.failed: Set[Channel] = set(failed)
        for src, dst in self.failed:
            # Failed channels must exist, else the failure set is a typo.
            topology.link_between(src, dst)

    def fail_channel(self, channel: Channel) -> None:
        """Add one directed channel to the failure set at runtime."""
        src, dst = channel
        self.topology.link_between(src, dst)  # must exist
        self.failed.add((src, dst))

    def restore_channel(self, channel: Channel) -> None:
        """Remove one directed channel from the failure set."""
        self.failed.discard(channel)

    # -- helpers -----------------------------------------------------------

    def _alive(self, node: int, port: str) -> bool:
        link = self.topology.out_ports[node].get(port)
        return link is not None and (link.src, link.dst) not in self.failed

    def _steer(self, node: int, direction: str, distance: int) -> Optional[str]:
        """Best surviving channel for *distance* remaining hops in
        *direction*; None when both channels are dead or absent."""
        express = EXPRESS_FOR[direction]
        if distance >= self.topology.span and self._alive(node, express):
            return express
        if self._alive(node, direction):
            return direction
        if self._alive(node, express):
            return express  # bounded overshoot past the failure
        return None

    def output_port(self, node: int, dst: int) -> str:
        x, y = self.topology.coordinates(node)
        dx, dy = self.topology.coordinates(dst)
        if x != dx:
            direction = EAST if x < dx else WEST
            port = self._steer(node, direction, abs(dx - x))
            if port is None:
                raise UnroutableError(
                    f"node {node}: no surviving channel towards x={dx}",
                    node=node,
                    dst=dst,
                    failed=frozenset(self.failed),
                )
            return port
        if y != dy:
            direction = SOUTH if y < dy else NORTH
            port = self._steer(node, direction, abs(dy - y))
            if port is None:
                raise UnroutableError(
                    f"node {node}: no surviving channel towards y={dy}",
                    node=node,
                    dst=dst,
                    failed=frozenset(self.failed),
                )
            return port
        return LOCAL_PORT


def build_fault_tolerant_network(
    config: ArchitectureConfig,
    failed: Iterable[Channel],
    shutdown_enabled: bool = False,
) -> Network:
    """A 3DM-E network whose routing avoids the *failed* channels."""
    if not config.express_span:
        raise ValueError(
            "fault-tolerant routing needs the express topology (3DM-E)"
        )
    topology = config.build_topology()
    assert isinstance(topology, ExpressMesh)
    return Network(
        topology=topology,
        num_vcs=config.vcs,
        buffer_depth=config.buffer_depth,
        combined_st_lt=config.combined_st_lt,
        shutdown_enabled=shutdown_enabled,
        routing=FaultTolerantExpressRouting(topology, failed),
        speculative_sa=config.speculative_sa,
        lookahead_rc=config.lookahead_rc,
    )


def routable_under(topology: ExpressMesh, failed: Iterable[Channel]) -> bool:
    """True when every ordered node pair still has a route."""
    from repro.core.express import route_path

    routing = FaultTolerantExpressRouting(topology, failed)
    for src in range(topology.num_nodes):
        for dst in range(topology.num_nodes):
            if src == dst:
                continue
            try:
                route_path(topology, src, dst, routing)
            except (UnroutableError, RuntimeError):
                return False
    return True


def single_failure_coverage(topology: ExpressMesh) -> float:
    """Fraction of single directed-channel failures the network tolerates.

    Express-channel failures are always tolerable (the normal sibling is
    minimal); normal-channel failures are tolerable where an express
    sibling leaves the same node.
    """
    total = 0
    tolerated = 0
    for link in topology.links:
        if link.kind not in (LinkKind.NORMAL, LinkKind.EXPRESS):
            continue
        total += 1
        if routable_under(topology, [(link.src, link.dst)]):
            tolerated += 1
    if total == 0:
        raise ValueError("topology has no failable channels")
    return tolerated / total
