"""Short-flit detection and dynamic layer shutdown (Secs. 3.2.1, 4.2.2).

A *short flit* carries valid data only in its top word group; the zero
detector (one per layer) recognises redundant all-0/all-1 groups and clock
gates the corresponding buffer/crossbar/link slices in the lower layers.
The detector itself costs a small energy overhead per flit, which the
paper argues is negligible against the avoided bit-line switching.

Two views are provided:

* :class:`ShortFlitDetector` — the functional circuit model, classifying
  raw flit words (used when traffic carries real payloads).
* :func:`shutdown_power_factor` — the analytic model behind Fig. 13b:
  expected dynamic-power multiplier on the separable datapath for a given
  short-flit fraction.
"""

from __future__ import annotations

from typing import Sequence

from repro.traffic.patterns import WORDS_PER_FLIT, flit_active_groups

#: Fractional energy overhead of the per-layer zero detectors, relative to
#: the separable-datapath energy of a full flit.  The paper calls it
#: negligible; we keep it explicit and small.
DETECTOR_OVERHEAD = 0.01


class ShortFlitDetector:
    """Per-layer zero/one detector bank for an L-layer datapath."""

    def __init__(self, layers: int = WORDS_PER_FLIT) -> None:
        if layers < 1:
            raise ValueError(f"layers must be >= 1, got {layers}")
        self.layers = layers
        self.flits_seen = 0
        self.short_flits = 0

    def active_layers(self, words: Sequence[int]) -> int:
        """Layers that must stay powered for this flit's words."""
        active = flit_active_groups(list(words))
        self.observe(active)
        return min(active, self.layers)

    def observe(self, active_groups: int) -> int:
        """Record one flit of known activity; return its layer mask.

        The simulated pipeline summarises each flit's payload by its
        pattern class (``active_groups``, the word-level classification
        :func:`~repro.traffic.patterns.flit_active_groups` would produce
        on the raw words), so the detector observes that count directly
        at injection.  Valid words fill groups bottom-up, hence the mask
        is the contiguous ``(1 << active) - 1`` with bit 0 — the
        always-on top group — set.
        """
        if active_groups < 1:
            raise ValueError(
                f"active_groups must be >= 1, got {active_groups}"
            )
        self.flits_seen += 1
        if active_groups == 1:
            self.short_flits += 1
        return (1 << min(active_groups, self.layers)) - 1

    @property
    def observed_short_fraction(self) -> float:
        if self.flits_seen == 0:
            return 0.0
        return self.short_flits / self.flits_seen


def shutdown_power_factor(
    short_fraction: float,
    layers: int = 4,
    detector_overhead: float = DETECTOR_OVERHEAD,
) -> float:
    """Expected dynamic-power multiplier on the *separable* datapath.

    A short flit switches only ``1/layers`` of the sliced datapath; a long
    flit switches all of it.  Every flit pays the detector overhead:

    ``factor = (1 - s) + s / L + overhead``

    With ``s = 0.5`` and ``L = 4`` this gives ~0.635 — i.e. ~36% separable
    power saved, the paper's headline shutdown number (Sec. 4.2.2).
    """
    if not 0.0 <= short_fraction <= 1.0:
        raise ValueError(f"short_fraction must be in [0, 1], got {short_fraction}")
    if layers < 1:
        raise ValueError(f"layers must be >= 1, got {layers}")
    if detector_overhead < 0:
        raise ValueError("detector_overhead must be non-negative")
    return (1.0 - short_fraction) + short_fraction / layers + detector_overhead
