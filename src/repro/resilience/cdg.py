"""Channel dependency graphs for deadlock-freedom proofs.

Dally & Seitz: a wormhole network is deadlock-free iff its channel
dependency graph (CDG) — nodes are directed channels, edges connect
consecutive channels some packet may hold simultaneously — is acyclic.
The resilience tests use this to *prove* (by enumeration, not
simulation) that the fault-tolerant routing stays deadlock-free under
every tolerable single-channel failure: enumerate all routes the
(possibly damaged) routing function produces, build the CDG, and check
for cycles.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.express import route_path
from repro.noc.packet import Packet
from repro.noc.routing import UnroutableError
from repro.topology.base import LOCAL_PORT, Topology

#: A directed channel identified by (source node, destination node).
Channel = Tuple[int, int]

#: A CDG node for VC-disciplined routing: (channel, virtual channel).
VCChannel = Tuple[Channel, int]


def channel_dependency_graph(
    topology: Topology, routing=None
) -> Dict[Channel, Set[Channel]]:
    """CDG induced by *routing* over every ordered node pair.

    Routes every (src, dst) pair; each consecutive channel pair along a
    path adds one dependency edge.  Pairs the routing function declares
    unroutable (:class:`~repro.noc.routing.UnroutableError`) are skipped
    — they surface as counted drops in simulation and contribute no
    dependencies.  Channels used by no route do not appear as keys.
    """
    graph: Dict[Channel, Set[Channel]] = {}
    for src in range(topology.num_nodes):
        for dst in range(topology.num_nodes):
            if src == dst:
                continue
            try:
                path = route_path(topology, src, dst, routing)
            except UnroutableError:
                continue
            channels = list(zip(path, path[1:]))
            for held, wanted in zip(channels, channels[1:]):
                graph.setdefault(held, set()).add(wanted)
            for channel in channels:
                graph.setdefault(channel, set())
    return graph


def vc_channel_dependency_graph(
    topology: Topology, routing, num_vcs: int
) -> Dict[VCChannel, Set[VCChannel]]:
    """Layered CDG for routing functions with a VC discipline.

    For schemes like torus datelines or escape-layer table routing the
    *physical* channel graph is cyclic by design; deadlock freedom comes
    from splitting each channel into per-VC resources.  This builds the
    CDG over ``(channel, vc)`` nodes: every ordered pair is routed with
    a probe flit, the discipline's :meth:`allowed_vcs` gives the VC set
    the packet may hold on each channel (``None`` = all ``num_vcs``),
    and :meth:`note_traverse` advances any per-flit discipline state
    (e.g. dateline crossings) exactly as the router would.  Acyclicity
    of this graph is the Dally & Seitz condition for the disciplined
    network.
    """
    graph: Dict[VCChannel, Set[VCChannel]] = {}
    for src in range(topology.num_nodes):
        for dst in range(topology.num_nodes):
            if src == dst:
                continue
            # A real packet/flit pair, so discipline hooks that read or
            # mutate flit state (dateline flags) see the true interface.
            flit = Packet(src=src, dst=dst, size_flits=1).make_flits()[0]
            node = src
            held: Optional[List[VCChannel]] = None
            hops = 0
            while node != dst:
                try:
                    port = routing.output_port(node, dst)
                except UnroutableError:
                    break  # counted drop in simulation; no dependency
                if port == LOCAL_PORT:
                    raise RuntimeError(
                        f"routing stalled at node {node} before {dst}"
                    )
                link = topology.out_ports[node][port]
                vcs = routing.allowed_vcs(flit, node, port)
                if vcs is None:
                    vcs = range(num_vcs)
                wanted = [((node, link.dst), vc) for vc in vcs]
                for unit in wanted:
                    graph.setdefault(unit, set())
                if held is not None:
                    for held_unit in held:
                        graph[held_unit].update(wanted)
                routing.note_traverse(flit, link)
                held = wanted
                node = link.dst
                hops += 1
                if hops > topology.num_nodes:
                    raise RuntimeError(
                        f"routing livelock from {src} to {dst}"
                    )
    return graph


def find_dependency_cycle(
    graph: Dict[Channel, Set[Channel]]
) -> Optional[List[Channel]]:
    """A cycle in the CDG as a channel list, or ``None`` when acyclic.

    Iterative three-colour DFS (the enumeration tests walk thousands of
    graphs, so no recursion limits), deterministic over sorted keys so a
    reported cycle is stable run to run.
    """
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {channel: WHITE for channel in graph}
    for root in sorted(graph):
        if colour[root] != WHITE:
            continue
        # Stack of (channel, iterator over its sorted successors).
        path: List[Channel] = []
        stack = [(root, iter(sorted(graph[root])))]
        colour[root] = GREY
        path.append(root)
        while stack:
            channel, successors = stack[-1]
            advanced = False
            for nxt in successors:
                state = colour.get(nxt, BLACK)
                if state == GREY:
                    # Back edge: the cycle is the path tail from nxt.
                    return path[path.index(nxt):] + [nxt]
                if state == WHITE:
                    colour[nxt] = GREY
                    path.append(nxt)
                    stack.append((nxt, iter(sorted(graph[nxt]))))
                    advanced = True
                    break
            if not advanced:
                colour[channel] = BLACK
                path.pop()
                stack.pop()
    return None
