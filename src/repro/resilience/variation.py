"""Process-variation model: per-tier and per-node delay/leakage spread.

3D integration stacks dies from different wafer positions (or wafers),
so the tiers of one stack sit at different process corners — systematic
tier-to-tier spread on top of the usual within-die random variation.
This module samples both as multiplicative factors:

* **tier multipliers** — one delay and one leakage factor per stacked
  tier, drawn around means that worsen linearly with tier index (the
  lower tiers of a 3D stack run hotter and are bonded later, the
  standard pessimistic assumption);
* **node multipliers** — one delay and one leakage factor per router,
  modelling within-die random variation;
* a **dynamic-energy multiplier** — one factor per chip for
  switched-capacitance spread.

Sampling is seeded and ``PYTHONHASHSEED``-stable (the RNG seed is
derived with SHA-256 from the variation seed and the architecture's
identity, mirroring ``repro.experiments.store.point_key``), so a
(seed, config) pair yields the same sample in every process — which is
what lets the sweep cache key capture variation exactly.

A sigma of 0 degenerates to multipliers of exactly 1.0
(``random.gauss(mu, 0.0) == mu``), and every consumer multiplies by the
factor directly, so sigma-0 results are bit-identical to runs without a
variation model.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
from dataclasses import dataclass
from typing import Tuple, TYPE_CHECKING

from repro.timing.delay import can_combine_st_lt

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.arch import ArchitectureConfig

#: Multipliers are clipped to this physical range: no corner is faster
#: than 2x nominal or slower than half speed.
VARIATION_FLOOR = 0.5
VARIATION_CEIL = 2.0

#: Mean tier delay multiplier grows by ``GRADIENT * sigma`` per tier.
TIER_DELAY_GRADIENT = 0.5
#: Leakage is exponentially sensitive to threshold shifts, so its tier
#: gradient is steeper than delay's.
TIER_LEAKAGE_GRADIENT = 1.0
#: Within-die (per-node) delay spread relative to sigma.
NODE_DELAY_SIGMA_FRACTION = 0.5
#: Chip-wide dynamic-energy (switched capacitance) spread vs sigma.
DYNAMIC_SIGMA_FRACTION = 0.3


def tier_delay_mean(tier: int, sigma: float) -> float:
    """Mean delay multiplier for stacked *tier* (0 = top) at *sigma*."""
    return 1.0 + TIER_DELAY_GRADIENT * sigma * tier


def tier_leakage_mean(tier: int, sigma: float) -> float:
    """Mean leakage multiplier for stacked *tier* (0 = top) at *sigma*."""
    return 1.0 + TIER_LEAKAGE_GRADIENT * sigma * tier


def _clip(value: float) -> float:
    return min(VARIATION_CEIL, max(VARIATION_FLOOR, value))


@dataclass(frozen=True)
class VariationSample:
    """One sampled variation outcome for one architecture."""

    sigma: float
    seed: int
    #: Per-tier delay multipliers, index 0 = top tier.
    tier_delay: Tuple[float, ...]
    #: Per-tier leakage multipliers, index 0 = top tier.
    tier_leakage: Tuple[float, ...]
    #: Per-node (router) delay multipliers.
    node_delay: Tuple[float, ...]
    #: Per-node (router) leakage multipliers.
    node_leakage: Tuple[float, ...]
    #: Chip-wide dynamic-energy multiplier.
    dynamic_multiplier: float

    @property
    def worst_delay_multiplier(self) -> float:
        """Critical-path delay factor: the slowest tier on the slowest
        node sets the clock the whole synchronous network must meet."""
        return max(self.tier_delay) * max(self.node_delay)

    @property
    def leakage_multiplier(self) -> float:
        """Chip-average leakage factor (tiers and nodes all leak in
        parallel, so the average — not the max — scales total power)."""
        tier = sum(self.tier_leakage) / len(self.tier_leakage)
        node = sum(self.node_leakage) / len(self.node_leakage)
        return tier * node

    def apply_to(self, config: "ArchitectureConfig") -> "ArchitectureConfig":
        """Re-validate *config*'s ST+LT merge at this sample's corner.

        A slow corner can push a design that nominally merges switch and
        link traversal back to the split (3-cycle) pipeline — the
        architectural consequence of variation on latency.  Returns the
        config unchanged (same object) when the merge decision is
        unaffected, so the nominal path stays bit-identical.
        """
        if not config.combined_st_lt:
            return config
        mult = self.worst_delay_multiplier
        if mult == 1.0:
            return config
        still_combinable = can_combine_st_lt(
            ports=config.ports,
            flit_bits=config.flit_bits,
            layers=config.datapath_layers,
            link_length_mm=config.max_link_mm,
            delay_multiplier=mult,
        )
        if still_combinable:
            return config
        return dataclasses.replace(config, combined_st_lt=False)


def _derive_rng(seed: int, config: "ArchitectureConfig") -> random.Random:
    """Seeded RNG bound to (variation seed, architecture identity).

    SHA-256 keeps the derivation stable across processes and
    ``PYTHONHASHSEED`` values, and binding the architecture name and
    size means each design draws an independent sample from the same
    variation seed (the physical situation: different chips).
    """
    tag = (
        f"variation:{seed}:{config.name}:{config.layers}:{config.num_nodes}"
    )
    digest = hashlib.sha256(tag.encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class VariationModel:
    """Samples :class:`VariationSample` instances for architectures.

    ``sigma`` is the relative standard deviation of the per-tier draws;
    per-node and dynamic-energy spreads are derived fractions of it.
    """

    def __init__(self, sigma: float, seed: int = 0) -> None:
        if sigma < 0:
            raise ValueError(f"variation sigma must be >= 0, got {sigma}")
        self.sigma = sigma
        self.seed = seed

    def sample_for(self, config: "ArchitectureConfig") -> VariationSample:
        """Draw this model's sample for *config* (deterministic).

        The draw order is fixed (tier delays, tier leakages, node
        delays, node leakages, dynamic) so adding consumers can never
        silently shift the stream.
        """
        rng = _derive_rng(self.seed, config)
        sigma = self.sigma
        tiers = config.datapath_layers
        nodes = config.num_nodes
        tier_delay = tuple(
            _clip(rng.gauss(tier_delay_mean(t, sigma), sigma))
            for t in range(tiers)
        )
        tier_leakage = tuple(
            _clip(rng.gauss(tier_leakage_mean(t, sigma), sigma))
            for t in range(tiers)
        )
        node_sigma = sigma * NODE_DELAY_SIGMA_FRACTION
        node_delay = tuple(
            _clip(rng.gauss(1.0, node_sigma)) for _ in range(nodes)
        )
        node_leakage = tuple(
            _clip(rng.gauss(1.0, sigma)) for _ in range(nodes)
        )
        dynamic = _clip(rng.gauss(1.0, sigma * DYNAMIC_SIGMA_FRACTION))
        return VariationSample(
            sigma=sigma,
            seed=self.seed,
            tier_delay=tier_delay,
            tier_leakage=tier_leakage,
            node_delay=node_delay,
            node_leakage=node_leakage,
            dynamic_multiplier=dynamic,
        )
