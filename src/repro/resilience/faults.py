"""Runtime fault injection: link kills and stuck-at virtual channels.

The paper argues (Sec. 3.3) that the 3DM designs' spare vertical
bandwidth buys fault tolerance — express siblings can bypass a failed
channel.  This module supplies the *damage* side of that argument: a
:class:`FaultInjector` that disables directed links (including TSV
bundles, which are just vertical/express links in the topology) and
freezes virtual channels mid-simulation, either at a scheduled cycle or
sampled stochastically from a seeded RNG.

Two link-failure modes:

* ``"hard"`` — the electrical failure.  The upstream output port is
  credit-starved: its held credits are confiscated, and credits already
  in flight back to it are intercepted at delivery time.  Committed
  wormholes wedge against the dead port; whether the network survives is
  exactly what the sanitizer and watchdog then audit.
* ``"drain"`` — the graceful (detected-and-fenced) failure.  The channel
  is removed from routing decisions only; committed wormholes finish
  over the still-functional wire.  Used when the experiment wants
  reroute behaviour without wedged traffic.

In both modes the channel is added to the fault-aware routing function's
failure set (swapping in a
:class:`~repro.core.fault.FaultTolerantExpressRouting` on express meshes
whose routing is not already fault-aware) and to the source router's
``_dead_out`` set, which turns any residual route onto the dead port
into a counted packet drop instead of a protocol violation.

Detached cost is one ``is None`` check per
:meth:`~repro.noc.network.Network.step`; a fault-free attached injector
(empty plan) performs no state changes, keeping runs bit-identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.network import Network
    from repro.topology.base import Topology

#: ``vc_ready`` stamp that keeps a VC unit perpetually "not yet ready".
#: Re-stamped every cycle because flit reception overwrites the stamp.
STUCK_READY_CYCLE = 1 << 60

_MODES = ("hard", "drain")


@dataclass(frozen=True)
class LinkFault:
    """Kill the directed channel ``src -> dst`` at ``cycle``."""

    cycle: int
    src: int
    dst: int

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError(f"fault cycle must be >= 0, got {self.cycle}")


@dataclass(frozen=True)
class StuckVCFault:
    """Freeze input VC ``vc`` of input port index ``port`` at ``node``.

    The unit's pipeline stamp is pinned past any reachable cycle, so
    buffered flits never progress — the stuck-at fault of a VC control
    FSM.  Upstream traffic wedges against the full buffer; the sanitizer
    keeps auditing conservation and the watchdog reports the stall.
    """

    cycle: int
    node: int
    port: int
    vc: int

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError(f"fault cycle must be >= 0, got {self.cycle}")


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible damage schedule for one simulation run."""

    links: Tuple[LinkFault, ...] = ()
    vcs: Tuple[StuckVCFault, ...] = ()
    #: ``"hard"`` (credit-starving electrical failure) or ``"drain"``
    #: (routing-level fence; committed wormholes finish).
    mode: str = "hard"

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"fault mode must be one of {_MODES}, got {self.mode!r}")

    def __bool__(self) -> bool:
        return bool(self.links or self.vcs)

    @staticmethod
    def random_links(
        topology: "Topology",
        count: int,
        seed: int,
        cycle: int = 0,
        mode: str = "hard",
    ) -> "FaultPlan":
        """Sample *count* distinct directed channels to kill at *cycle*.

        Channels are drawn from the sorted link list with
        ``random.Random(seed)``, so the same (topology, count, seed)
        yields the same plan in every process and under every
        ``PYTHONHASHSEED`` — the property the sweep cache key relies on.
        """
        channels = sorted((link.src, link.dst) for link in topology.links)
        if count > len(channels):
            raise ValueError(
                f"asked for {count} link faults but the topology has "
                f"only {len(channels)} directed channels"
            )
        picked = random.Random(seed).sample(channels, count)
        return FaultPlan(
            links=tuple(
                LinkFault(cycle=cycle, src=src, dst=dst)
                for src, dst in sorted(picked)
            ),
            mode=mode,
        )


@dataclass
class _Event:
    """One scheduled fault application (internal)."""

    cycle: int
    kind: str  # "link" | "vc"
    payload: Tuple[int, ...] = field(default_factory=tuple)


class FaultInjector:
    """Applies a :class:`FaultPlan` to a live network.

    Attach with :meth:`attach` (once, before the first ``step``); the
    network then calls :meth:`on_cycle` once per cycle after arrivals
    and injections land, and routes dead-port credits through
    :meth:`confiscate`.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.network: Optional["Network"] = None
        #: Directed channels killed so far.
        self.failed: Set[Tuple[int, int]] = set()
        #: ``(node, out_port)`` pairs whose returning credits are
        #: confiscated (hard mode only).
        self.dead_credit_targets: Set[Tuple[int, int]] = set()
        #: ``(node, out_port, vc) -> credits confiscated`` — the ledger
        #: the sanitizer's credit-conservation audit balances against.
        self.confiscated: Dict[Tuple[int, int, int], int] = {}
        #: ``(node, flat unit index)`` of VCs frozen so far.
        self._stuck: List[Tuple[int, int]] = []
        self.links_killed = 0
        self.vcs_stuck = 0
        self.credits_confiscated = 0
        self._schedule: List[_Event] = sorted(
            [
                _Event(f.cycle, "link", (f.src, f.dst))
                for f in plan.links
            ]
            + [
                _Event(f.cycle, "vc", (f.node, f.port, f.vc))
                for f in plan.vcs
            ],
            key=lambda e: (e.cycle, e.kind, e.payload),
        )
        self._next = 0

    # -- wiring --------------------------------------------------------------

    def attach(self, network: "Network") -> "FaultInjector":
        """Register on *network* (``network.fault_injector``)."""
        if network.fault_injector is not None:
            raise RuntimeError("network already has a fault injector")
        self.network = network
        network.fault_injector = self
        if self.plan.links:
            self._enable_fault_aware_routing(network)
        return self

    @staticmethod
    def _enable_fault_aware_routing(network: "Network") -> None:
        """Swap in fault-aware routing where the topology supports it.

        Routing functions that already expose ``fail_channel`` (the
        fault-tolerant express routing, west-first adaptive) are kept.
        On an express mesh with plain X-Y routing, the drop-in
        fault-tolerant equivalent replaces it (identical decisions while
        the failure set is empty).  Other topologies keep their routing
        and rely on the router's dead-port drop fallback.
        """
        if hasattr(network.routing, "fail_channel"):
            return
        from repro.topology.express_mesh import ExpressMesh

        if isinstance(network.topology, ExpressMesh):
            from repro.core.fault import FaultTolerantExpressRouting

            routing = FaultTolerantExpressRouting(network.topology, ())
            network.routing = routing
            for router in network.routers:
                router.routing = routing

    # -- per-cycle hook ------------------------------------------------------

    def on_cycle(self, cycle: int) -> None:
        """Apply events due at *cycle* and re-freeze stuck VCs.

        Called by :meth:`Network.step` after arrivals and injections
        (both re-stamp ``vc_ready``) and before the routers step, so a
        frozen unit can never advance a pipeline stage.
        """
        schedule = self._schedule
        while self._next < len(schedule) and schedule[self._next].cycle <= cycle:
            event = schedule[self._next]
            self._next += 1
            if event.kind == "link":
                self._kill_link(*event.payload)
            else:
                self._stick_vc(*event.payload)
        if self._stuck:
            routers = self.network.routers
            for node, unit in self._stuck:
                routers[node].vc_ready[unit] = STUCK_READY_CYCLE

    # -- fault application ---------------------------------------------------

    def _kill_link(self, src: int, dst: int) -> None:
        network = self.network
        link = network.topology.link_between(src, dst)  # must exist
        if (src, dst) in self.failed:
            return
        self.failed.add((src, dst))
        self.links_killed += 1
        router = network.routers[src]
        port = router.port_index[link.src_port]
        if router._dead_out is None:
            router._dead_out = set()
        router._dead_out.add(port)
        routing = network.routing
        if hasattr(routing, "fail_channel"):
            routing.fail_channel((src, dst))
        if self.plan.mode == "hard":
            # Credit-starve the dead output: confiscate held credits and
            # mark the port so in-flight returns are intercepted.
            per_vc = router.credits[port]
            if per_vc is not None:
                for vc, held in enumerate(per_vc):
                    if held:
                        key = (src, port, vc)
                        self.confiscated[key] = (
                            self.confiscated.get(key, 0) + held
                        )
                        self.credits_confiscated += held
                        per_vc[vc] = 0
            self.dead_credit_targets.add((src, port))

    def _stick_vc(self, node: int, port: int, vc: int) -> None:
        router = self.network.routers[node]
        if not 0 <= port < router.num_ports:
            raise ValueError(f"node {node} has no input port {port}")
        if not 0 <= vc < router.num_vcs:
            raise ValueError(f"router has no VC {vc}")
        unit = port * router.num_vcs + vc
        self._stuck.append((node, unit))
        self.vcs_stuck += 1
        router.vc_ready[unit] = STUCK_READY_CYCLE

    # -- credit interception -------------------------------------------------

    def confiscate(self, node: int, port: int, vc: int) -> None:
        """Swallow one credit returning to a dead output port."""
        key = (node, port, vc)
        self.confiscated[key] = self.confiscated.get(key, 0) + 1
        self.credits_confiscated += 1

    # -- reporting -----------------------------------------------------------

    def summary(self) -> Dict:
        """JSON-friendly injection report for ``SimulationResult``."""
        return {
            "mode": self.plan.mode,
            "links_killed": self.links_killed,
            "vcs_stuck": self.vcs_stuck,
            "credits_confiscated": self.credits_confiscated,
            "failed_channels": [list(ch) for ch in sorted(self.failed)],
        }
