"""Runtime resilience scenarios: fault injection and process variation.

MIRA's multi-layer premise makes tier heterogeneity and vertical-link
fragility first-class concerns.  This package turns both into runtime
scenarios for the simulator:

* :mod:`repro.resilience.faults` — a :class:`FaultInjector` that kills
  links/TSVs and sticks VCs mid-simulation (at a scheduled cycle or
  chosen stochastically from a seeded RNG), propagating into the router
  core as credit-starved ports and into the routing functions for
  fault-aware reroute.
* :mod:`repro.resilience.variation` — a :class:`VariationModel` that
  samples per-tier/per-node delay and leakage multipliers (seeded,
  PYTHONHASHSEED-stable) so latency, power, and thermal numbers become
  distributions across variation seeds instead of point estimates.
* :mod:`repro.resilience.cdg` — channel-dependency-graph construction
  and cycle detection, backing the proof-by-enumeration deadlock-freedom
  tests for the fault-tolerant routing.

Both runtime hooks follow the repo's optional-attachment contract: one
is-None check per cycle when detached, bit-identical results when
attached but fault-free / sigma-zero (re-verified against the golden
e2e digests).  See ``docs/RESILIENCE.md``.
"""

from repro.resilience.cdg import (
    channel_dependency_graph,
    find_dependency_cycle,
)
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    LinkFault,
    StuckVCFault,
)
from repro.resilience.variation import (
    VARIATION_CEIL,
    VARIATION_FLOOR,
    VariationModel,
    VariationSample,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "LinkFault",
    "StuckVCFault",
    "VariationModel",
    "VariationSample",
    "VARIATION_FLOOR",
    "VARIATION_CEIL",
    "channel_dependency_graph",
    "find_dependency_cycle",
]
