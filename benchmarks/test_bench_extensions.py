"""Extension experiments: compression vs shutdown, advanced pipelines.

Beyond-the-paper studies enabled by the substrate (see DESIGN.md's
extension notes): the FPC-compression alternative to layer shutdown, and
the Fig. 8b/c pipeline organisations composed with MIRA's ST+LT merge.
"""

from repro.experiments.compression_exp import compression_vs_shutdown
from repro.experiments.report import format_table


def test_compression_vs_shutdown(benchmark, settings, save_report):
    results = benchmark.pedantic(
        lambda: compression_vs_shutdown(settings, workload="multimedia"),
        rounds=1,
        iterations=1,
    )
    rows = [
        [label, f"{p.avg_latency:.2f}", f"{p.total_power_w:.3f}",
         f"{p.pdp * 1e9:.3f}"]
        for label, p in results.items()
    ]
    save_report(
        "ext_compression_vs_shutdown",
        "3DM, multimedia trace (58% short flits)\n"
        + format_table(
            ["technique", "latency (cyc)", "power (W)", "PDP (W*ns)"], rows
        ),
    )
    base = results["baseline"]
    assert results["shutdown"].total_power_w < base.total_power_w
    assert results["fpc"].avg_latency < base.avg_latency
    assert results["fpc"].total_power_w < base.total_power_w


def test_mesi_vs_moesi(benchmark, settings, save_report):
    """Protocol extension: cache-to-cache forwarding changes the message
    mix (fewer writebacks, CPU-to-CPU data) on the same workload."""
    from repro.experiments.protocol_exp import compare_protocols

    results = benchmark.pedantic(
        lambda: compare_protocols(settings, workload="barnes"),
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            r.protocol,
            r.total_messages,
            r.writebacks,
            r.cache_to_cache,
            f"{r.point.avg_latency:.2f}",
            f"{r.point.total_power_w:.3f}",
        ]
        for r in results.values()
    ]
    save_report(
        "ext_mesi_vs_moesi",
        "barnes on 3DM\n"
        + format_table(
            ["protocol", "messages", "WbData", "cache-to-cache",
             "net latency", "power (W)"],
            rows,
        ),
    )
    assert results["moesi"].cache_to_cache > 0
    assert results["moesi"].writebacks <= results["mesi"].writebacks
    assert results["mesi"].cache_to_cache == 0


def test_bursty_traffic_tails(benchmark, settings, save_report):
    """Same mean load, bursty vs smooth arrivals: tail latency blows up
    while the mean moves modestly — the standard robustness check the
    substrate enables."""
    from repro.core.arch import make_3dme
    from repro.noc.simulator import Simulator
    from repro.traffic.synthetic import (
        BurstyUniformRandomTraffic,
        UniformRandomTraffic,
    )

    def run():
        out = {}
        for label, traffic in (
            ("smooth", UniformRandomTraffic(36, 0.15, seed=settings.seed)),
            ("bursty", BurstyUniformRandomTraffic(
                36, 0.15, burst_length=80, duty_cycle=0.2, seed=settings.seed,
            )),
        ):
            network = make_3dme().build_network()
            sim = Simulator(
                network, traffic,
                warmup_cycles=settings.warmup_cycles,
                measure_cycles=settings.measure_cycles,
                drain_cycles=settings.drain_cycles,
            )
            out[label] = sim.run()
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [label, f"{r.avg_latency:.2f}", f"{r.latency_p95:.0f}",
         f"{r.latency_p99:.0f}"]
        for label, r in results.items()
    ]
    save_report(
        "ext_bursty_tails",
        "3DM-E @ 0.15 flits/node/cycle mean load\n"
        + format_table(["arrivals", "mean", "p95", "p99"], rows),
    )
    assert results["bursty"].latency_p99 > results["smooth"].latency_p99
