"""Tables 2 and 3 — design parameters and ST+LT merge validation."""

from repro.experiments.area_tables import (
    PAPER_TABLE3,
    table2_parameters,
    table3_delays,
)
from repro.experiments.report import format_table


def test_table2_design_parameters(benchmark, save_report):
    params = benchmark.pedantic(table2_parameters, rounds=1, iterations=1)
    rows = [[k, f"{v:g}"] for k, v in params.items()]
    save_report("table2_parameters", format_table(["parameter", "value"], rows))
    assert params["link_length_2db_mm"] == 2 * params["link_length_3dm_mm"]


def test_table3_delay_validation(benchmark, save_report):
    reports = benchmark.pedantic(table3_delays, rounds=1, iterations=1)
    rows = []
    for report in reports:
        paper = PAPER_TABLE3[report.name]
        rows.append(
            [
                report.name,
                f"{report.xbar_ps:.2f} ({paper['xbar_ps']:.2f})",
                f"{report.link_ps:.2f} ({paper['link_ps']:.2f})",
                f"{report.combined_ps:.2f}",
                "Yes" if report.can_combine else "No",
            ]
        )
    save_report(
        "table3_delays",
        "model ps (paper ps), 500 ps stage budget\n"
        + format_table(
            ["design", "XBAR", "Link", "Combined", "ST+LT combined"], rows
        ),
    )
    for report in reports:
        paper = PAPER_TABLE3[report.name]
        assert abs(report.xbar_ps / paper["xbar_ps"] - 1) < 0.002
        assert abs(report.link_ps / paper["link_ps"] - 1) < 0.002
        assert report.can_combine == paper["combined"]
