"""Table 1 — router component areas (model vs paper)."""

from repro.experiments.area_tables import table1_area
from repro.experiments.report import format_table

MODULES = ("RC", "SA1", "SA2", "VA1", "VA2", "Crossbar", "Buffer")


def test_table1_component_area(benchmark, save_report):
    table = benchmark.pedantic(table1_area, rounds=1, iterations=1)

    rows = []
    for module in MODULES:
        row = [module]
        for arch in ("2DB", "3DB", "3DM", "3DM-E"):
            model = table[arch]["model"].per_layer[module]
            paper = table[arch]["paper"][module]
            row.append(f"{model:,.0f} ({paper:,.0f})")
        rows.append(row)
    total_row = ["Total"]
    via_row = ["Via ovh/layer"]
    for arch in ("2DB", "3DB", "3DM", "3DM-E"):
        model = table[arch]["model"]
        total_row.append(f"{model.total:,.0f} ({table[arch]['paper']['Total']:,.0f})")
        via_row.append(f"{model.via_overhead_fraction * 100:.2f}%")
    rows += [total_row, via_row]

    save_report(
        "table1_area",
        "model um^2 (paper um^2)\n"
        + format_table(["module", "2DB", "3DB", "3DM*", "3DM-E*"], rows),
    )

    for arch, row in table.items():
        assert abs(row["model"].total / row["paper"]["Total"] - 1) < 0.01, arch
        assert row["model"].via_overhead_fraction < 0.02
