"""Validate telemetry artifacts: JSONL metric streams and trace.json.

CI runs a short telemetry-enabled simulation and then this script over
its outputs; any schema drift (records out of order, spans escaping
their packet, missing counter tracks) fails the build.  Usable locally
too::

    python benchmarks/validate_telemetry.py metrics.jsonl trace.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List


def fail(message: str) -> None:
    raise SystemExit(f"telemetry validation failed: {message}")


def validate_metrics(path: str) -> int:
    """Check the JSONL stream schema; returns the sample count."""
    with open(path, encoding="utf-8") as handle:
        try:
            records = [json.loads(line) for line in handle]
        except json.JSONDecodeError as exc:
            fail(f"{path} is not line-delimited JSON: {exc}")
    if len(records) < 3:
        fail(f"{path}: expected meta + samples + end, got {len(records)}")

    meta, samples, end = records[0], records[1:-1], records[-1]
    if meta.get("type") != "meta":
        fail(f"{path}: first record is {meta.get('type')!r}, not 'meta'")
    if meta.get("schema") != 1:
        fail(f"{path}: unknown schema version {meta.get('schema')!r}")
    if end.get("type") != "end":
        fail(f"{path}: last record is {end.get('type')!r}, not 'end'")
    # A clean finish() writes a footer with "windows"; a crashed run's
    # writer synthesizes a minimal {"type":"end","records":N} footer so
    # the stream still parses.  Cross-check whichever fields exist.
    if "windows" in end and end["windows"] != len(samples):
        fail(
            f"{path}: end record claims {end.get('windows')} windows, "
            f"stream has {len(samples)}"
        )
    if "records" in end and end["records"] != len(records):
        fail(
            f"{path}: end record claims {end.get('records')} records, "
            f"stream has {len(records)}"
        )
    trace_meta = meta.get("trace")
    if trace_meta is not None:
        for key in ("sample_rate", "head_tail", "seed",
                    "ring_capacity_events"):
            if key not in trace_meta:
                fail(f"{path}: meta trace block lacks {key!r}")

    catalogue = set(meta.get("metrics", ()))
    cycles: List[int] = []
    for sample in samples:
        if sample.get("type") != "sample":
            fail(f"{path}: interior record of type {sample.get('type')!r}")
        cycles.append(sample["cycle"])
        if sample["window"] < 1:
            fail(f"{path}: non-positive window span {sample['window']}")
        names = (
            set(sample["counters"])
            | set(sample["gauges"])
            | set(sample["histograms"])
        )
        if names != catalogue:
            fail(
                f"{path}: sample at cycle {sample['cycle']} carries "
                f"{sorted(names ^ catalogue)} vs the meta catalogue"
            )
        for name, counter in sample["counters"].items():
            if counter["delta"] < 0:
                fail(f"{path}: counter {name} decreased")
    if cycles != sorted(cycles) or len(set(cycles)) != len(cycles):
        fail(f"{path}: sample cycles are not strictly increasing")
    return len(samples)


def validate_trace(path: str) -> int:
    """Check the Chrome-trace schema; returns the event count."""
    with open(path, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            fail(f"{path} is not valid JSON: {exc}")
    events = payload.get("traceEvents")
    if not events:
        fail(f"{path}: no traceEvents")
    other = payload.get("otherData", {})
    if other.get("ts_unit") != "simulation cycles":
        fail(f"{path}: missing ts_unit marker")
    for key in ("packets_traced", "packets_dropped", "truncated", "windows"):
        if key not in other:
            fail(f"{path}: otherData lacks {key!r}")
    sampling = other.get("sampling")
    if sampling is None:
        fail(f"{path}: otherData lacks the 'sampling' block")
    for key in (
        "mode", "sample_rate", "head_tail", "seed", "ring_capacity_events",
        "packets_seen", "packets_captured", "head_captured", "hash_sampled",
        "sampled_out", "tail_evicted", "events_recorded",
        "events_overwritten", "events_orphaned",
    ):
        if key not in sampling:
            fail(f"{path}: sampling block lacks {key!r}")
    if sampling["mode"] not in ("full", "sampled"):
        fail(f"{path}: unknown sampling mode {sampling['mode']!r}")
    captured = other["packets_traced"] + other.get("packets_in_flight", 0)
    if captured != sampling["packets_captured"]:
        fail(
            f"{path}: traced+in_flight = {captured} but the sampling "
            f"block claims {sampling['packets_captured']} captured"
        )
    if sampling["packets_seen"] < sampling["packets_captured"]:
        fail(f"{path}: more packets captured than seen")

    phases = {e.get("ph") for e in events}
    needed = ["M", "C"]
    if sampling["packets_captured"] > 0:
        needed.append("X")
    for phase in needed:
        if phase not in phases:
            fail(f"{path}: no {phase!r}-phase events")

    # Per packet track, every child slice must nest inside the root
    # packet span (parents are emitted first).
    by_tid = {}
    for event in events:
        if event["ph"] == "X" and event["pid"] == 1:
            by_tid.setdefault(event["tid"], []).append(event)
    if not by_tid and sampling["packets_captured"] > 0:
        fail(f"{path}: no packet lifecycle slices")
    for tid, slices in by_tid.items():
        root = slices[0]
        if not root["name"].startswith("pkt "):
            fail(f"{path}: track {tid} does not start with its packet span")
        lo, hi = root["ts"], root["ts"] + root["dur"]
        for child in slices[1:]:
            if child["ts"] < lo or child["ts"] + child["dur"] > hi:
                fail(
                    f"{path}: slice {child['name']!r} escapes packet span "
                    f"on track {tid}"
                )
    return len(events)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics", help="JSONL metrics stream to validate")
    parser.add_argument("trace", nargs="?", help="trace.json to validate")
    args = parser.parse_args(argv)

    samples = validate_metrics(args.metrics)
    print(f"{args.metrics}: OK ({samples} samples)")
    if args.trace:
        events = validate_trace(args.trace)
        print(f"{args.trace}: OK ({events} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
