"""Validate telemetry artifacts: metric streams, traces, stall reports.

CI runs a short telemetry-enabled simulation and then this script over
its outputs; any schema drift (records out of order, spans escaping
their packet, missing counter tracks, a stall report whose latency
decomposition does not conserve) fails the build.  Usable locally
too::

    python benchmarks/validate_telemetry.py metrics.jsonl trace.json \\
        --stall-report stall_report.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List


def fail(message: str) -> None:
    raise SystemExit(f"telemetry validation failed: {message}")


def validate_metrics(path: str) -> int:
    """Check the JSONL stream schema; returns the sample count."""
    with open(path, encoding="utf-8") as handle:
        try:
            records = [json.loads(line) for line in handle]
        except json.JSONDecodeError as exc:
            fail(f"{path} is not line-delimited JSON: {exc}")
    if len(records) < 3:
        fail(f"{path}: expected meta + samples + end, got {len(records)}")

    meta, samples, end = records[0], records[1:-1], records[-1]
    if meta.get("type") != "meta":
        fail(f"{path}: first record is {meta.get('type')!r}, not 'meta'")
    if meta.get("schema") != 1:
        fail(f"{path}: unknown schema version {meta.get('schema')!r}")
    if end.get("type") != "end":
        fail(f"{path}: last record is {end.get('type')!r}, not 'end'")
    # A clean finish() writes a footer with "windows"; a crashed run's
    # writer synthesizes a minimal {"type":"end","records":N} footer so
    # the stream still parses.  Cross-check whichever fields exist.
    if "windows" in end and end["windows"] != len(samples):
        fail(
            f"{path}: end record claims {end.get('windows')} windows, "
            f"stream has {len(samples)}"
        )
    if "records" in end and end["records"] != len(records):
        fail(
            f"{path}: end record claims {end.get('records')} records, "
            f"stream has {len(records)}"
        )
    trace_meta = meta.get("trace")
    if trace_meta is not None:
        for key in ("sample_rate", "head_tail", "seed",
                    "ring_capacity_events"):
            if key not in trace_meta:
                fail(f"{path}: meta trace block lacks {key!r}")

    catalogue = set(meta.get("metrics", ()))
    cycles: List[int] = []
    for sample in samples:
        if sample.get("type") != "sample":
            fail(f"{path}: interior record of type {sample.get('type')!r}")
        cycles.append(sample["cycle"])
        if sample["window"] < 1:
            fail(f"{path}: non-positive window span {sample['window']}")
        names = (
            set(sample["counters"])
            | set(sample["gauges"])
            | set(sample["histograms"])
        )
        if names != catalogue:
            fail(
                f"{path}: sample at cycle {sample['cycle']} carries "
                f"{sorted(names ^ catalogue)} vs the meta catalogue"
            )
        for name, counter in sample["counters"].items():
            if counter["delta"] < 0:
                fail(f"{path}: counter {name} decreased")
    if cycles != sorted(cycles) or len(set(cycles)) != len(cycles):
        fail(f"{path}: sample cycles are not strictly increasing")
    return len(samples)


def validate_trace(path: str) -> int:
    """Check the Chrome-trace schema; returns the event count."""
    with open(path, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            fail(f"{path} is not valid JSON: {exc}")
    events = payload.get("traceEvents")
    if not events:
        fail(f"{path}: no traceEvents")
    other = payload.get("otherData", {})
    if other.get("ts_unit") != "simulation cycles":
        fail(f"{path}: missing ts_unit marker")
    for key in ("packets_traced", "packets_dropped", "truncated", "windows"):
        if key not in other:
            fail(f"{path}: otherData lacks {key!r}")
    sampling = other.get("sampling")
    if sampling is None:
        fail(f"{path}: otherData lacks the 'sampling' block")
    for key in (
        "mode", "sample_rate", "head_tail", "seed", "ring_capacity_events",
        "packets_seen", "packets_captured", "head_captured", "hash_sampled",
        "sampled_out", "tail_evicted", "events_recorded",
        "events_overwritten", "events_orphaned",
    ):
        if key not in sampling:
            fail(f"{path}: sampling block lacks {key!r}")
    if sampling["mode"] not in ("full", "sampled"):
        fail(f"{path}: unknown sampling mode {sampling['mode']!r}")
    captured = other["packets_traced"] + other.get("packets_in_flight", 0)
    if captured != sampling["packets_captured"]:
        fail(
            f"{path}: traced+in_flight = {captured} but the sampling "
            f"block claims {sampling['packets_captured']} captured"
        )
    if sampling["packets_seen"] < sampling["packets_captured"]:
        fail(f"{path}: more packets captured than seen")

    phases = {e.get("ph") for e in events}
    needed = ["M", "C"]
    if sampling["packets_captured"] > 0:
        needed.append("X")
    for phase in needed:
        if phase not in phases:
            fail(f"{path}: no {phase!r}-phase events")

    # Per packet track, every child slice must nest inside the root
    # packet span (parents are emitted first).
    by_tid = {}
    for event in events:
        if event["ph"] == "X" and event["pid"] == 1:
            by_tid.setdefault(event["tid"], []).append(event)
    if not by_tid and sampling["packets_captured"] > 0:
        fail(f"{path}: no packet lifecycle slices")
    for tid, slices in by_tid.items():
        root = slices[0]
        if not root["name"].startswith("pkt "):
            fail(f"{path}: track {tid} does not start with its packet span")
        lo, hi = root["ts"], root["ts"] + root["dur"]
        for child in slices[1:]:
            if child["ts"] < lo or child["ts"] + child["dur"] > hi:
                fail(
                    f"{path}: slice {child['name']!r} escapes packet span "
                    f"on track {tid}"
                )
    return len(events)


#: The stall-cause catalogue is part of the report schema contract —
#: kept literal here (not imported) so the validator stays standalone
#: and catches accidental renames on the library side.
STALL_CAUSES = (
    "rc_wait", "va_conflict", "sa_loss", "credit_stall", "serialization",
)
DECOMPOSITION_COMPONENTS = (
    "queue", "rc_wait", "va_wait", "sa_wait", "link_transit",
    "serialization",
)


def validate_stall_report(path: str) -> int:
    """Check the ``repro diagnose`` report schema; returns the total
    attributed stall cycles."""
    with open(path, encoding="utf-8") as handle:
        try:
            report = json.load(handle)
        except json.JSONDecodeError as exc:
            fail(f"{path} is not valid JSON: {exc}")
    if report.get("type") != "stall_report":
        fail(f"{path}: type is {report.get('type')!r}, not 'stall_report'")
    if report.get("schema") != 1:
        fail(f"{path}: unknown schema version {report.get('schema')!r}")
    for key in ("arch", "cycles", "total_stall_cycles", "causes",
                "composition", "by_active_layers", "hotspot_links",
                "hotspot_nodes", "backpressure", "decomposition"):
        if key not in report:
            fail(f"{path}: report lacks {key!r}")

    causes = report["causes"]
    if set(causes) != set(STALL_CAUSES):
        fail(
            f"{path}: cause catalogue {sorted(causes)} != expected "
            f"{sorted(STALL_CAUSES)}"
        )
    total = report["total_stall_cycles"]
    if any(v < 0 for v in causes.values()):
        fail(f"{path}: negative stall-cause counter")
    if sum(causes.values()) != total:
        fail(
            f"{path}: causes sum to {sum(causes.values())} but "
            f"total_stall_cycles is {total}"
        )
    if set(report["composition"]) != set(STALL_CAUSES):
        fail(f"{path}: composition keys differ from the cause catalogue")
    if total and abs(sum(report["composition"].values()) - 1.0) > 1e-9:
        fail(f"{path}: composition shares do not sum to 1")

    layer_total = 0
    for k, block in report["by_active_layers"].items():
        if not k.isdigit():
            fail(f"{path}: by_active_layers key {k!r} is not a layer count")
        if set(block["causes"]) != set(STALL_CAUSES):
            fail(f"{path}: layer block {k} has a different cause catalogue")
        if sum(block["causes"].values()) != block["total"]:
            fail(f"{path}: layer block {k} causes do not sum to its total")
        layer_total += block["total"]
    if layer_total != total:
        fail(
            f"{path}: per-layer totals sum to {layer_total}, "
            f"report total is {total}"
        )

    for kind, items, keys in (
        ("hotspot_links", report["hotspot_links"], ("src", "dst", "stalls")),
        ("hotspot_nodes", report["hotspot_nodes"], ("node", "stalls")),
    ):
        stalls = [item["stalls"] for item in items]
        for item in items:
            for key in keys + ("causes",):
                if key not in item:
                    fail(f"{path}: {kind} entry lacks {key!r}")
            if sum(item["causes"].values()) != item["stalls"]:
                fail(f"{path}: {kind} entry causes do not sum to stalls")
        if stalls != sorted(stalls, reverse=True):
            fail(f"{path}: {kind} not sorted by stalls descending")
    if total and not report["hotspot_links"]:
        fail(f"{path}: stalls were attributed but no hotspot links listed")

    for entry in report["backpressure"]:
        for key in ("link", "credit_stalls", "chain"):
            if key not in entry:
                fail(f"{path}: backpressure entry lacks {key!r}")
        chain = entry["chain"]
        if not chain or chain[0] != entry["link"]:
            fail(f"{path}: backpressure chain does not start at its link")

    decomposition = report["decomposition"]
    if decomposition is not None:
        for key in ("packets", "skipped_incomplete", "conservation_exact",
                    "latency_total", "components_total", "components_mean",
                    "mean_latency"):
            if key not in decomposition:
                fail(f"{path}: decomposition lacks {key!r}")
        components = decomposition["components_total"]
        if set(components) != set(DECOMPOSITION_COMPONENTS):
            fail(
                f"{path}: decomposition components {sorted(components)} "
                f"!= expected {sorted(DECOMPOSITION_COMPONENTS)}"
            )
        if decomposition["conservation_exact"] != decomposition["packets"]:
            fail(
                f"{path}: only {decomposition['conservation_exact']} of "
                f"{decomposition['packets']} decomposed packets conserve "
                "latency exactly"
            )
        if sum(components.values()) != decomposition["latency_total"]:
            fail(
                f"{path}: decomposition components sum to "
                f"{sum(components.values())} but latency_total is "
                f"{decomposition['latency_total']}"
            )
    return total


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics", help="JSONL metrics stream to validate")
    parser.add_argument("trace", nargs="?", help="trace.json to validate")
    parser.add_argument(
        "--stall-report", default=None, metavar="PATH",
        help="repro diagnose stall report (JSON) to validate",
    )
    args = parser.parse_args(argv)

    samples = validate_metrics(args.metrics)
    print(f"{args.metrics}: OK ({samples} samples)")
    if args.trace:
        events = validate_trace(args.trace)
        print(f"{args.trace}: OK ({events} events)")
    if args.stall_report:
        stalls = validate_stall_report(args.stall_report)
        print(f"{args.stall_report}: OK ({stalls} stalled unit-cycles)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
