#!/usr/bin/env python
"""CI check: fault-injection smoke + variation-sweep determinism.

Two gates, both driving the shipped surfaces end to end:

1. **Fault smoke** — the real CLI (``python -m repro simulate``) injects
   two seeded-random link faults into 3DM-E mid-run with the sanitizer
   auditing every cycle, then the same run is repeated in-process and
   must (a) reroute around the damage (zero drops, not saturated),
   (b) keep every invariant (no sanitizer raise, no watchdog report),
   and (c) report the injection in the fault summary.
2. **Variation determinism** — the same variation+fault ``PointSpec``
   is executed in two fresh interpreters under different
   ``PYTHONHASHSEED`` values; the canonical ``PointResult`` JSON must
   be byte-identical (the property the content-addressed sweep cache
   stakes its correctness on).

Exits non-zero on any violated invariant.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = str(REPO_ROOT / "src")

ARCH = "3DM-E"
RATE = 0.1
FAULTS = 2
FAULT_SEED = 4
FAULT_CYCLE = 50


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def _env(hash_seed: str = "0") -> dict:
    return {
        "PYTHONPATH": SRC,
        "PYTHONHASHSEED": hash_seed,
        "REPRO_SCALE": "quick",
        "PATH": "/usr/bin:/bin",
    }


def check_cli_fault_smoke() -> None:
    """The CLI injects, reroutes, sanitizes, and reports the damage."""
    cmd = [
        sys.executable, "-m", "repro", "simulate",
        "--arch", ARCH, "--rate", str(RATE),
        "--inject-faults", str(FAULTS),
        "--fault-seed", str(FAULT_SEED),
        "--fault-cycle", str(FAULT_CYCLE),
        "--fault-mode", "drain",
        "--sanitize",
    ]
    proc = subprocess.run(
        cmd, capture_output=True, text=True, env=_env(), cwd=REPO_ROOT
    )
    if proc.returncode != 0:
        fail(f"CLI fault injection run failed:\n{proc.stderr}")
    out = proc.stdout
    if f"{FAULTS} links killed" not in out:
        fail(f"CLI output missing the fault summary line:\n{out}")
    print("CLI fault smoke: injected, sanitized, reported. OK")


def check_inprocess_fault_invariants() -> None:
    """Same injection in-process: delivery, reroute, invariants."""
    sys.path.insert(0, SRC)
    from repro.core.arch import make_3dme
    from repro.experiments.config import ExperimentSettings
    from repro.experiments.runner import run_uniform_point
    from repro.resilience.faults import FaultPlan

    config = make_3dme()
    settings = ExperimentSettings.quick()
    plan = FaultPlan.random_links(
        config.build_topology(), FAULTS, FAULT_SEED,
        cycle=FAULT_CYCLE, mode="drain",
    )
    point = run_uniform_point(
        config, RATE, settings, sanitize=True, faults=plan
    )
    sim = point.sim
    if sim.fault_summary["links_killed"] != FAULTS:
        fail(f"expected {FAULTS} links killed, got {sim.fault_summary}")
    if sim.packets_dropped != 0:
        fail(f"drain-mode reroute dropped {sim.packets_dropped} packets")
    if sim.saturated:
        fail("injected run saturated (wedged traffic?)")
    if sim.packets_delivered <= 0:
        fail("injected run delivered nothing")
    if sim.sanity is None or sim.sanity.audits == 0:
        fail("sanitizer did not audit the injected run")
    if sim.sanity.watchdog_reports:
        fail(f"watchdog tripped: {sim.sanity.watchdog_reports}")
    print(
        f"in-process fault invariants: {sim.packets_delivered} delivered,"
        f" 0 dropped, {sim.sanity.audits} audits clean. OK"
    )


DETERMINISM_CODE = """\
import json
from repro.core.arch import make_3dm
from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import run_point_spec
from repro.experiments.store import PointSpec, canonical_json, \
    point_key, point_result_to_json

settings = ExperimentSettings.quick()
spec = PointSpec(
    make_3dm(), "uniform", 0.15,
    fault_random_links=1, fault_seed=3, fault_cycle=40, fault_mode="drain",
    variation_sigma=0.2, variation_seed=11,
)
point = run_point_spec(spec, settings)
print(point_key(spec, settings))
print(canonical_json(point_result_to_json(point)))
"""


def check_variation_determinism() -> None:
    """Same seed, fresh interpreters, hostile hash seeds: same JSON."""
    outputs = []
    for hash_seed in ("0", "424242"):
        proc = subprocess.run(
            [sys.executable, "-c", DETERMINISM_CODE],
            capture_output=True, text=True, env=_env(hash_seed),
        )
        if proc.returncode != 0:
            fail(f"determinism run (hashseed {hash_seed}) failed:\n"
                 f"{proc.stderr}")
        outputs.append(proc.stdout)
    if outputs[0] != outputs[1]:
        fail("variation+fault PointResult JSON differs across "
             "PYTHONHASHSEED values — the sweep cache would be poisoned")
    key, payload = outputs[0].split("\n", 1)
    print(
        f"variation determinism: key {key[:16]}… and "
        f"{len(payload)} bytes of result JSON identical across "
        "interpreters. OK"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.parse_args()
    check_cli_fault_smoke()
    check_inprocess_fault_invariants()
    check_variation_determinism()
    print("resilience check: all gates passed")


if __name__ == "__main__":
    main()
