"""Fig. 11 — latency results: UR sweep, NUCA-UR sweep, MP traces, hops."""

from repro.experiments.latency import (
    fig11a_uniform_latency,
    fig11b_nuca_latency,
    fig11c_trace_latency,
    fig11d_hop_counts,
)
from repro.experiments.report import dict_table, normalized_table, sweep_table


def test_fig11a_uniform_latency(benchmark, settings, save_report):
    sweep = benchmark.pedantic(
        lambda: fig11a_uniform_latency(settings), rounds=1, iterations=1
    )
    save_report(
        "fig11a_latency_uniform",
        "average latency (cycles) vs injection rate (flits/node/cycle)\n"
        + sweep_table(sweep, "avg_latency"),
    )
    top = len(settings.uniform_rates) - 1
    lat = {arch: series[top][1].avg_latency for arch, series in sweep.items()}
    assert lat["3DM-E"] < lat["3DM"] < lat["2DB"]
    assert lat["3DM-E"] < lat["3DB"]
    # Paper headline: up to ~51% saving vs 2DB, ~26% vs 3DB.
    assert 1 - lat["3DM-E"] / lat["2DB"] > 0.30
    assert 1 - lat["3DM-E"] / lat["3DB"] > 0.15


def test_fig11b_nuca_latency(benchmark, settings, save_report):
    sweep = benchmark.pedantic(
        lambda: fig11b_nuca_latency(settings), rounds=1, iterations=1
    )
    save_report(
        "fig11b_latency_nuca",
        "average latency (cycles) vs request rate (reqs/CPU/cycle)\n"
        + sweep_table(sweep, "avg_latency"),
    )
    top = len(settings.nuca_rates) - 1
    lat = {arch: series[top][1].avg_latency for arch, series in sweep.items()}
    assert min(lat, key=lat.get) == "3DM-E"


def test_fig11c_mp_trace_latency(benchmark, settings, save_report):
    results = benchmark.pedantic(
        lambda: fig11c_trace_latency(settings), rounds=1, iterations=1
    )
    save_report(
        "fig11c_latency_traces",
        "MP-trace latency normalised to 2DB\n"
        + normalized_table(results, metric="avg_latency"),
    )
    # Paper: 3DM ~23% and 3DM-E ~38% below 2DB on average.
    archs = next(iter(results.values())).keys()
    mean = {
        arch: sum(r[arch].avg_latency / r["2DB"].avg_latency for r in results.values())
        / len(results)
        for arch in archs
    }
    assert mean["3DM"] < 1.0
    assert mean["3DM-E"] < mean["3DM"]
    assert 1 - mean["3DM-E"] > 0.15


def test_fig11d_hop_counts(benchmark, settings, save_report):
    hops = benchmark.pedantic(
        lambda: fig11d_hop_counts(settings), rounds=1, iterations=1
    )
    save_report("fig11d_hop_counts", dict_table(hops, row_label="traffic"))
    # 3DM-E minimal everywhere; 2DB == 3DM; 3DB flips from best (UR) to
    # worse than 2DB under layout-constrained traffic (Sec. 4.2.1).
    for traffic in ("UR", "NUCA-UR", "MP"):
        # (NC variants tie with their combined counterparts on hops up to
        # sampling noise in which packets land in the window.)
        assert hops[traffic]["3DM-E"] <= min(hops[traffic].values()) + 0.05
        assert abs(hops[traffic]["2DB"] - hops[traffic]["3DM"]) < 0.1
    assert hops["UR"]["3DB"] < hops["UR"]["2DB"]
    assert hops["NUCA-UR"]["3DB"] > hops["NUCA-UR"]["2DB"]
