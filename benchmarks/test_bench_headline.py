"""Headline-claims capstone: every committed shape, checked in one run."""

from repro.experiments.headline import evaluate_headline_claims, render_claims


def test_headline_claims(benchmark, settings, save_report):
    claims = benchmark.pedantic(
        lambda: evaluate_headline_claims(settings), rounds=1, iterations=1
    )
    save_report("headline_claims", render_claims(claims))
    failures = [c for c in claims if not c.holds]
    assert not failures, f"headline claims failed: {[c.claim for c in failures]}"
