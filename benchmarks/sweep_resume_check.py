#!/usr/bin/env python
"""CI check: kill a sweep mid-run, resume it, assert zero recomputation.

Drives the real CLI (``python -m repro sweep``) end to end:

1. Launch a small cached+journaled sweep and ``SIGKILL`` it once the
   journal shows at least ``--kill-after`` completed points — a genuine
   hard interrupt, not a cooperative shutdown.
2. Re-run with ``--resume`` and assert, from the engine's own counters,
   that every previously finished point was a cache hit and only the
   gap was simulated.
3. Re-run once more and assert the sweep is now 100% cache hits with
   zero points executed.

The journal and stats files are left in ``--workdir`` for artifact
upload.  Exits non-zero on any violated invariant.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

ARCHS = "2DB,3DM"
RATES = "0.05,0.1,0.15"
TOTAL_POINTS = 6


def _journal_done_count(journal: Path) -> int:
    if not journal.exists():
        return 0
    count = 0
    for line in journal.read_text(encoding="utf-8").splitlines():
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn trailing write from the kill
        if record.get("type") == "point" and record.get("status") == "done":
            count += 1
    return count


def _sweep_cmd(workdir: Path, resume: bool, stats_name: str) -> list:
    cmd = [
        sys.executable, "-m", "repro", "sweep",
        "--archs", ARCHS, "--rates", RATES, "--processes", "1",
        "--cache-dir", str(workdir / "cache"),
        "--journal", str(workdir / "journal.jsonl"),
        "--stats-out", str(workdir / stats_name),
    ]
    if resume:
        cmd.append("--resume")
    return cmd


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", default="artifacts/sweep")
    parser.add_argument(
        "--kill-after", type=int, default=2,
        help="completed points to wait for before SIGKILL (default 2)",
    )
    parser.add_argument(
        "--kill-wait", type=float, default=300.0,
        help="max seconds to wait for the kill threshold",
    )
    args = parser.parse_args()

    workdir = Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    journal = workdir / "journal.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.setdefault("REPRO_SCALE", "quick")

    # --- Run 1: start the sweep, hard-kill it mid-run -------------------
    print(f"[1/3] starting sweep, will SIGKILL after "
          f"{args.kill_after} completed points")
    proc = subprocess.Popen(
        _sweep_cmd(workdir, resume=False, stats_name="stats_killed.json"),
        env=env, cwd=str(REPO_ROOT),
    )
    deadline = time.monotonic() + args.kill_wait
    while time.monotonic() < deadline:
        if _journal_done_count(journal) >= args.kill_after:
            break
        if proc.poll() is not None:
            print("FAIL: sweep finished before it could be killed; "
                  "raise the point count or lower --kill-after")
            return 1
        time.sleep(0.05)
    else:
        proc.kill()
        print("FAIL: journal never reached the kill threshold")
        return 1
    proc.send_signal(signal.SIGKILL)
    proc.wait()
    done_before = _journal_done_count(journal)
    print(f"      killed with {done_before}/{TOTAL_POINTS} points journaled")
    if not args.kill_after <= done_before < TOTAL_POINTS:
        print("FAIL: kill landed outside the mid-run window")
        return 1

    # --- Run 2: resume; finished points must all be cache hits ---------
    print("[2/3] resuming the interrupted sweep")
    subprocess.run(
        _sweep_cmd(workdir, resume=True, stats_name="stats_resumed.json"),
        env=env, cwd=str(REPO_ROOT), check=True,
    )
    stats = json.loads((workdir / "stats_resumed.json").read_text())["stats"]
    print(f"      resume counters: {stats}")
    failures = []
    if stats["points"] != TOTAL_POINTS:
        failures.append(f"expected {TOTAL_POINTS} points, saw {stats['points']}")
    if stats["cache_hits"] != done_before:
        failures.append(
            f"expected {done_before} cache hits (the journaled points), "
            f"saw {stats['cache_hits']} — finished work was recomputed"
        )
    if stats["executed"] != TOTAL_POINTS - done_before:
        failures.append(
            f"expected {TOTAL_POINTS - done_before} executed, "
            f"saw {stats['executed']}"
        )
    if stats["failed_points"]:
        failures.append(f"{stats['failed_points']} points failed")

    # --- Run 3: replay; everything must come from cache -----------------
    print("[3/3] replaying the completed sweep")
    subprocess.run(
        _sweep_cmd(workdir, resume=True, stats_name="stats_replayed.json"),
        env=env, cwd=str(REPO_ROOT), check=True,
    )
    stats = json.loads((workdir / "stats_replayed.json").read_text())["stats"]
    print(f"      replay counters: {stats}")
    if stats["cache_hits"] != TOTAL_POINTS:
        failures.append(
            f"replay expected {TOTAL_POINTS} cache hits, saw {stats['cache_hits']}"
        )
    if stats["executed"] != 0:
        failures.append(
            f"replay recomputed {stats['executed']} points (expected 0)"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: kill-and-resume completed with zero recomputation")
    return 0


if __name__ == "__main__":
    sys.exit(main())
