"""Ablations over the paper's fixed design choices (DESIGN.md index).

Not paper figures — these quantify the sensitivity of choices the paper
asserts: pipeline organisation (Fig. 8), 2 VCs (Sec. 3.2.4), 8-flit
buffers (Sec. 3.2.1), span-2 express channels (Sec. 3.3), plus the QoS
and fault-tolerance uses of the spare bandwidth the paper names but does
not evaluate.
"""

from repro.experiments.ablations import (
    ablate_3db_cpu_placement,
    ablate_vc_partitioning,
    ablate_buffer_depth,
    ablate_express_span,
    ablate_link_failures,
    ablate_pipeline_depth,
    ablate_qos,
    ablate_vc_count,
)
from repro.experiments.report import format_table


def test_ablation_pipeline_depth(benchmark, settings, save_report):
    results = benchmark.pedantic(
        lambda: ablate_pipeline_depth(settings), rounds=1, iterations=1
    )
    rows = [
        [label, f"{p.avg_latency:.2f}", f"{p.total_power_w:.3f}"]
        for label, p in results.items()
    ]
    save_report(
        "ablation_pipeline_depth",
        format_table(["organisation", "latency (cyc)", "power (W)"], rows),
    )
    lat = {label: p.avg_latency for label, p in results.items()}
    # Within each design, every removed stage helps; the fully-optimised
    # 3DM pipeline is the global winner.
    two_db = [
        lat["2DB 4-stage (Fig.8a, 5cyc/hop)"],
        lat["2DB +spec SA (Fig.8b, 4cyc/hop)"],
        lat["2DB +lookahead (Fig.8c, 3cyc/hop)"],
    ]
    assert two_db == sorted(two_db, reverse=True)
    assert lat["3DM merged+spec+lookahead (2cyc/hop)"] == min(lat.values())
    assert (
        lat["3DM merged ST+LT (Fig.8d, 4cyc/hop)"]
        < lat["2DB 4-stage (Fig.8a, 5cyc/hop)"]
    )


def test_ablation_vc_count(benchmark, settings, save_report):
    results = benchmark.pedantic(
        lambda: ablate_vc_count(settings), rounds=1, iterations=1
    )
    rows = [
        [vcs, f"{p.avg_latency:.2f}", f"{p.sim.throughput:.3f}"]
        for vcs, p in sorted(results.items())
    ]
    save_report(
        "ablation_vc_count",
        format_table(["VCs/port", "latency (cyc)", "throughput"], rows),
    )
    assert results[2].avg_latency <= results[1].avg_latency * 1.05


def test_ablation_buffer_depth(benchmark, settings, save_report):
    results = benchmark.pedantic(
        lambda: ablate_buffer_depth(settings), rounds=1, iterations=1
    )
    rows = [
        [depth, f"{p.avg_latency:.2f}"] for depth, p in sorted(results.items())
    ]
    save_report(
        "ablation_buffer_depth",
        format_table(["flits/VC", "latency (cyc)"], rows),
    )
    assert results[8].avg_latency <= results[2].avg_latency


def test_ablation_express_span(benchmark, settings, save_report):
    results = benchmark.pedantic(
        lambda: ablate_express_span(settings), rounds=1, iterations=1
    )
    rows = [
        [span, f"{p.avg_hops:.2f}", f"{p.avg_latency:.2f}"]
        for span, p in sorted(results.items())
    ]
    save_report(
        "ablation_express_span",
        format_table(["span", "hops", "latency (cyc)"], rows),
    )
    assert results[2].avg_latency < results[3].avg_latency


def test_ablation_qos(benchmark, settings, save_report):
    results = benchmark.pedantic(
        lambda: ablate_qos(settings), rounds=1, iterations=1
    )
    rows = [
        [mode, f"{lat[1]:.2f}", f"{lat[0]:.2f}"]
        for mode, lat in results.items()
    ]
    save_report(
        "ablation_qos",
        format_table(["arbitration", "high-prio latency", "low-prio latency"], rows),
    )
    assert results["qos"][1] < results["qos"][0]


def test_ablation_vc_partitioning(benchmark, settings, save_report):
    results = benchmark.pedantic(
        lambda: ablate_vc_partitioning(settings, request_rate=0.08),
        rounds=1,
        iterations=1,
    )
    rows = [
        [mode, f"{m['avg']:.2f}", f"{m['ctrl']:.2f}", f"{m['data']:.2f}"]
        for mode, m in results.items()
    ]
    save_report(
        "ablation_vc_partitioning",
        "3DM, NUCA-UR @ 0.08 req/CPU/cycle (Sec. 3.2.4 decision ii)\n"
        + format_table(["VC policy", "avg", "ctrl", "data"], rows),
    )
    assert results["per-class"]["avg"] <= results["pooled"]["avg"] * 1.25


def test_ablation_3db_cpu_placement(benchmark, settings, save_report):
    results = benchmark.pedantic(
        lambda: ablate_3db_cpu_placement(settings), rounds=1, iterations=1
    )
    rows = [
        [
            placement,
            f"{m['avg_latency']:.2f}",
            f"{m['avg_hops']:.2f}",
            f"{m['avg_temp_k']:.2f}",
            f"{m['max_temp_k']:.2f}",
        ]
        for placement, m in results.items()
    ]
    save_report(
        "ablation_3db_placement",
        "3DB CPU placement: NUCA latency vs temperature (Sec. 3.1 trade)\n"
        + format_table(
            ["placement", "latency (cyc)", "hops", "avg T (K)", "max T (K)"],
            rows,
        ),
    )
    assert results["spread"]["avg_hops"] < results["top"]["avg_hops"]
    assert results["spread"]["max_temp_k"] > results["top"]["max_temp_k"]


def test_ablation_link_failures(benchmark, settings, save_report):
    results = benchmark.pedantic(
        lambda: ablate_link_failures(settings), rounds=1, iterations=1
    )
    rows = [[count, f"{lat:.2f}"] for count, lat in sorted(results.items())]
    save_report(
        "ablation_link_failures",
        "3DM-E latency with failed full-duplex normal links\n"
        + format_table(["failed links", "latency (cyc)"], rows),
    )
    worst = max(results.values())
    assert worst < results[0] * 1.5  # graceful degradation
