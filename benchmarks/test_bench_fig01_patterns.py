"""Fig. 1 — data-pattern breakdown of payload words per workload."""

from repro.experiments.breakdown import fig1_data_patterns
from repro.experiments.report import dict_table
from repro.traffic.workloads import PRESENTED_WORKLOADS


def test_fig1_data_patterns(benchmark, save_report):
    data = benchmark.pedantic(
        lambda: fig1_data_patterns(workloads=tuple(PRESENTED_WORKLOADS)),
        rounds=1,
        iterations=1,
    )
    save_report("fig01_data_patterns", dict_table(data, row_label="workload"))
    # Fig. 1 shape: frequent patterns (all-0 dominated) are a large share
    # of payload words for the commercial workloads.
    assert data["multimedia"]["zero"] > data["art"]["zero"]
    for workload in PRESENTED_WORKLOADS:
        assert data[workload]["zero"] + data[workload]["one"] > 0.1
