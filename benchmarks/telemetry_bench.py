"""Telemetry overhead snapshot: cycles/sec with telemetry off vs on.

Runs the same 3DM uniform-random point six ways — bare, metrics-only,
full trace capture (sample rate 1.0, the pre-ring default), production
sampled tracing (rate 0.05 + head/tail 16), stall attribution
(per-unit stall-cause counters + report), and attribution combined
with sampled tracing (the ``repro diagnose`` configuration) — and
writes ``BENCH_PR7.json`` with best-of-N CPU-time rates and overhead
ratios.

CPU-time (``time.process_time``) is the decision metric, same as
``engine_bench.py``: wall-clock on shared runners is ±10-15% noise.
The overhead *ratio* is a per-round paired comparison (every mode runs
in the same process within the same round; the best round wins), so it
is machine-normalized by construction; the calibration ops/s figure is
recorded so absolute rates stay comparable across artifacts anyway.

The ratio polices the **per-cycle hot-path tax**: the one-time
``finish()`` flush (lifecycle reconstruction + trace serialization) is
bounded by the capture caps, not by run length — on this deliberately
short run it would dominate the measurement (tens of ms against a
sub-second loop) while amortizing to nothing on a production-length
run.  It is subtracted from the loop time and reported separately as
``flush_ms`` so the cost stays visible instead of hidden.

Bit-identity is verified the strong way: the six golden end-to-end
digests are recomputed **with sampled tracing attached** and compared
against the committed fixture — telemetry must not perturb the
simulation by a single flit.

    python benchmarks/telemetry_bench.py [--out BENCH_PR7.json]
        [--rounds N] [--max-overhead 1.10] [--skip-identity]

With ``--max-overhead``, exits non-zero when sampled tracing or stall
attribution costs more than the given ratio over telemetry-off — the
CI overhead gate.  The combined ``attribution_traced`` mode is
reported but not gated: it compounds the two gated features, so its
ratio is roughly their product.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

from engine_bench import calibrate  # noqa: E402

from repro.core.arch import make_3dm  # noqa: E402
from repro.noc.simulator import Simulator  # noqa: E402
from repro.telemetry import TelemetryConfig  # noqa: E402
from repro.traffic.synthetic import UniformRandomTraffic  # noqa: E402

WARMUP = 200
MEASURE = 2000
RATE = 0.15

#: Production sampling knobs the "trace_sampled" mode (and CI) uses.
SAMPLE_RATE = 0.05
HEAD_TAIL = 16

#: PR 3's measured full-capture overhead, kept for the narrative: this
#: is the 2.5x trace tax the ring-buffer recorder was built to kill.
PR3_TRACE_OVERHEAD = 2.5


def run_once(telemetry):
    config = make_3dm()
    network = config.build_network(shutdown_enabled=True)
    sim = Simulator(
        network,
        UniformRandomTraffic(
            num_nodes=config.num_nodes, flit_rate=RATE, seed=9,
            short_flit_fraction=0.5,
        ),
        warmup_cycles=WARMUP, measure_cycles=MEASURE, drain_cycles=10000,
        telemetry=telemetry,
    )
    # Settle the allocator and take the collector out of the timing:
    # the previous mode's flush (trace_full frees ~200k event dicts)
    # otherwise leaves GC debt that lands on whichever mode runs next.
    gc.collect()
    gc.disable()
    try:
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        result = sim.run()
        cpu = time.process_time() - cpu0
        wall = time.perf_counter() - wall0
    finally:
        gc.enable()
    # Exclude the one-time teardown flush from the per-cycle rate; it
    # is reported separately (see the module docstring).
    flush = result.telemetry.finish_cpu_s if result.telemetry else 0.0
    loop_cpu = max(cpu - flush, 1e-9)
    return result, result.cycles / wall, result.cycles / loop_cpu, flush


def mode_configs(tmp: str, i: int):
    """The benchmarked telemetry modes, rebuilt fresh every round."""
    return {
        "off": None,
        "metrics": TelemetryConfig(
            interval=100,
            metrics_path=os.path.join(tmp, f"m{i}.jsonl"),
        ),
        "trace_full": TelemetryConfig(
            interval=100,
            metrics_path=os.path.join(tmp, f"tf{i}.jsonl"),
            trace_path=os.path.join(tmp, f"tf{i}.json"),
        ),
        "trace_sampled": TelemetryConfig(
            interval=100,
            metrics_path=os.path.join(tmp, f"ts{i}.jsonl"),
            trace_path=os.path.join(tmp, f"ts{i}.json"),
            trace_sample_rate=SAMPLE_RATE,
            trace_head_tail=HEAD_TAIL,
        ),
        "attribution": TelemetryConfig(
            interval=100,
            metrics_path=os.path.join(tmp, f"a{i}.jsonl"),
            attribution=True,
        ),
        # The `repro diagnose` configuration: stall attribution plus
        # sampled lifecycle capture for the latency decomposition.
        "attribution_traced": TelemetryConfig(
            interval=100,
            metrics_path=os.path.join(tmp, f"at{i}.jsonl"),
            trace_path=os.path.join(tmp, f"at{i}.json"),
            trace_sample_rate=SAMPLE_RATE,
            trace_head_tail=HEAD_TAIL,
            attribution=True,
        ),
    }


def bench(rounds: int):
    wall = {}
    cpu = {}
    flush_ms = {}
    round_ratios = []
    reference = None
    with tempfile.TemporaryDirectory() as tmp:
        # Warm imports, allocator, and branch caches so the first
        # measured mode is not systematically penalized.
        run_once(None)
        for i in range(rounds):
            round_cpu = {}
            for mode, telemetry in mode_configs(tmp, i).items():
                result, wall_rate, cpu_rate, flush = run_once(telemetry)
                if reference is None:
                    reference = result
                assert result.avg_latency == reference.avg_latency, (
                    f"telemetry mode {mode!r} perturbed the simulation"
                )
                assert (
                    result.events.flit_hops == reference.events.flit_hops
                ), f"telemetry mode {mode!r} perturbed the simulation"
                wall[mode] = max(wall.get(mode, 0.0), wall_rate)
                cpu[mode] = max(cpu.get(mode, 0.0), cpu_rate)
                flush_ms[mode] = max(
                    flush_ms.get(mode, 0.0), flush * 1e3
                )
                round_cpu[mode] = cpu_rate
            # Paired within-round ratios: all the modes ran
            # back-to-back in this process, so a machine-speed drift
            # between rounds cancels out of the ratio.
            round_ratios.append(
                {
                    mode: round_cpu["off"] / round_cpu[mode]
                    for mode in round_cpu
                    if mode != "off"
                }
            )
    overhead = {
        mode: min(r[mode] for r in round_ratios)
        for mode in round_ratios[0]
    }
    return wall, cpu, flush_ms, overhead


def verify_bit_identity() -> bool:
    """Recompute the golden end-to-end digests for every committed case
    with **sampled tracing and stall attribution attached** and compare
    against the fixture: the strongest form of the bit-identical
    guarantee this benchmark reports."""
    tests_dir = os.path.join(
        os.path.dirname(__file__), os.pardir, "tests"
    )
    sys.path.insert(0, tests_dir)
    try:
        import test_golden_e2e as golden
    finally:
        sys.path.remove(tests_dir)
    from repro.experiments.runner import run_point_spec

    with open(golden.FIXTURE, encoding="utf-8") as handle:
        fixture = json.load(handle)
    ok = True
    with tempfile.TemporaryDirectory() as tmp:
        for name, spec in sorted(golden.CASES.items()):
            telemetry = TelemetryConfig(
                interval=100,
                metrics_path=os.path.join(tmp, f"{name}.jsonl"),
                trace_path=os.path.join(tmp, f"{name}.trace.json"),
                trace_sample_rate=SAMPLE_RATE,
                trace_head_tail=HEAD_TAIL,
                attribution=True,
            )
            point = run_point_spec(spec, golden.SETTINGS, telemetry=telemetry)
            digest = golden.compute_digest(point)
            expected = fixture["cases"][name]["digest"]
            match = digest == expected
            ok = ok and match
            print(f"  {name:16s} {'ok' if match else 'DIGEST MISMATCH'}")
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_PR7.json")
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--max-overhead", type=float, default=None, metavar="RATIO",
        help="fail when sampled tracing costs more than RATIO x the "
        "telemetry-off CPU-time rate (e.g. 1.10)",
    )
    parser.add_argument(
        "--skip-identity", action="store_true",
        help="skip the six-architecture traced golden digest "
        "verification (report bit_identical: null)",
    )
    args = parser.parse_args(argv)

    if args.skip_identity:
        bit_identical = None
    else:
        print("verifying traced runs against golden digests:")
        bit_identical = verify_bit_identity()

    wall, cpu, flush_ms, overhead = bench(args.rounds)
    calib = calibrate()
    overhead = {mode: round(ratio, 3) for mode, ratio in overhead.items()}
    payload = {
        "benchmark": "telemetry overhead (3DM uniform, "
        f"rate={RATE}, {MEASURE} measured cycles)",
        "cycles_per_second_cpu": {
            mode: round(rate, 1) for mode, rate in cpu.items()
        },
        "cycles_per_second_wall": {
            mode: round(rate, 1) for mode, rate in wall.items()
        },
        "overhead_ratio": overhead,
        "flush_ms": {
            mode: round(ms, 1) for mode, ms in flush_ms.items()
        },
        "sampling": {"sample_rate": SAMPLE_RATE, "head_tail": HEAD_TAIL},
        "baseline_pr3_trace_overhead": PR3_TRACE_OVERHEAD,
        "rounds": args.rounds,
        "calibration_ops_per_s": round(calib, 1),
        "bit_identical": bit_identical,
        "timing_note": "overhead_ratio is the best within-round paired "
        "off_cpu/mode_cpu over the simulation loop (machine-normalized "
        "by construction); the one-time finish() flush is excluded from "
        "the loop time and reported as flush_ms; bit_identical means "
        "the six golden digests matched with sampled tracing and stall "
        "attribution attached",
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))

    if bit_identical is False:
        print("FAIL: traced runs are not bit-identical to the golden "
              "digests")
        return 1
    if args.max_overhead is not None:
        # attribution_traced is reported but not gated: it compounds
        # two independently gated features (sampled tracing x
        # attribution), so its ratio is roughly their product and a
        # single-feature gate would reject it by construction.
        failed = False
        for mode in ("trace_sampled", "attribution"):
            measured = overhead[mode]
            if measured > args.max_overhead:
                print(
                    f"FAIL: {mode} overhead {measured:.3f}x exceeds "
                    f"the {args.max_overhead:.2f}x gate"
                )
                failed = True
            else:
                print(
                    f"{mode} overhead {measured:.3f}x within the "
                    f"{args.max_overhead:.2f}x gate"
                )
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
