"""Telemetry overhead snapshot: cycles/sec with telemetry off vs on.

Runs the same 3DM uniform-random point three ways — bare, metrics-only,
and metrics+trace — and writes ``BENCH_PR3.json`` with the measured
simulation rates and overhead ratios.  The disabled path must stay at
parity (one ``is None`` check per cycle); the enabled paths document
what a window of sampling and full lifecycle capture actually cost.

    python benchmarks/telemetry_bench.py [--out BENCH_PR3.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

from repro.core.arch import make_3dm  # noqa: E402
from repro.noc.simulator import Simulator  # noqa: E402
from repro.telemetry import TelemetryConfig  # noqa: E402
from repro.traffic.synthetic import UniformRandomTraffic  # noqa: E402

WARMUP = 200
MEASURE = 2000
RATE = 0.15


def run_once(telemetry):
    config = make_3dm()
    network = config.build_network(shutdown_enabled=True)
    sim = Simulator(
        network,
        UniformRandomTraffic(
            num_nodes=config.num_nodes, flit_rate=RATE, seed=9,
            short_flit_fraction=0.5,
        ),
        warmup_cycles=WARMUP, measure_cycles=MEASURE, drain_cycles=10000,
        telemetry=telemetry,
    )
    start = time.perf_counter()
    result = sim.run()
    wall = time.perf_counter() - start
    return result, result.cycles / wall


def bench(rounds: int):
    rates = {"off": [], "metrics": [], "metrics+trace": []}
    reference = None
    with tempfile.TemporaryDirectory() as tmp:
        for i in range(rounds):
            result, rate = run_once(None)
            rates["off"].append(rate)
            if reference is None:
                reference = result

            result, rate = run_once(
                TelemetryConfig(
                    interval=100,
                    metrics_path=os.path.join(tmp, f"m{i}.jsonl"),
                )
            )
            rates["metrics"].append(rate)
            assert result.avg_latency == reference.avg_latency, (
                "telemetry perturbed the simulation"
            )

            result, rate = run_once(
                TelemetryConfig(
                    interval=100,
                    metrics_path=os.path.join(tmp, f"mt{i}.jsonl"),
                    trace_path=os.path.join(tmp, f"t{i}.json"),
                )
            )
            rates["metrics+trace"].append(rate)
            assert result.avg_latency == reference.avg_latency, (
                "trace capture perturbed the simulation"
            )
    return {mode: max(values) for mode, values in rates.items()}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_PR3.json")
    parser.add_argument("--rounds", type=int, default=3)
    args = parser.parse_args(argv)

    best = bench(args.rounds)
    payload = {
        "benchmark": "telemetry overhead (3DM uniform, "
        f"rate={RATE}, {MEASURE} measured cycles)",
        "cycles_per_second": {
            mode: round(rate, 1) for mode, rate in best.items()
        },
        "overhead_ratio": {
            "metrics": round(best["off"] / best["metrics"], 3),
            "metrics+trace": round(best["off"] / best["metrics+trace"], 3),
        },
        "rounds": args.rounds,
        "bit_identical": True,  # asserted per round above
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
