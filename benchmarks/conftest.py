"""Shared fixtures for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper, prints it,
and saves the rendered text under ``results/`` so the run leaves an
inspectable record.  ``REPRO_SCALE=full`` switches to the long sweeps.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.config import ExperimentSettings

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return ExperimentSettings.from_env()


@pytest.fixture(scope="session")
def save_report():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"\n=== {name} ===")
        print(text)

    return _save
