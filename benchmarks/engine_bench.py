"""Event-driven engine throughput snapshot: off-path cycles/second.

Measures the bare simulation rate (no telemetry, no sanitizer, no
profiler) on the standard benchmark point — 3DM, uniform random traffic
at 0.15 flits/node/cycle, 2000 measured cycles — and writes
``BENCH_PR6.json`` with best-of-N wall-clock and CPU-time rates, the
speedup over the committed PR 3 baseline, and a bit-identity flag
backed by the golden end-to-end digests (all six architectures).

CPU-time (``time.process_time``) is the decision metric: wall-clock on
shared runners is ±10-15% noise, which would swamp a 10% regression
gate.  The wall rate is reported for continuity with BENCH_PR3.json.

    python benchmarks/engine_bench.py [--out BENCH_PR6.json]
        [--rounds N] [--check-against BENCH_PR6.json [--tolerance 0.10]]
        [--skip-identity]

With ``--check-against``, exits non-zero when the measured off-path
CPU-time rate falls more than ``--tolerance`` below the committed
artifact's rate — the CI regression gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

from repro.core.arch import make_3dm, make_ring  # noqa: E402
from repro.noc.simulator import Simulator  # noqa: E402
from repro.traffic.synthetic import UniformRandomTraffic  # noqa: E402

WARMUP = 200
MEASURE = 2000
RATE = 0.15

#: Off-path cycles/s committed in BENCH_PR3.json (pre-SoA engine).
#: Measured on the machine that produced that artifact — a different,
#: faster box than the one that produced BENCH_PR6.json.
PR3_OFF_BASELINE = 3946.0

#: The pre-SoA engine (git HEAD before the rewrite) re-measured on the
#: same machine and workload that produced BENCH_PR6.json, best-of-5
#: CPU-time — the apples-to-apples denominator for the SoA speedup.
SEED_ENGINE_SAME_MACHINE_CPU = 3223.5


def calibrate(rounds: int = 3) -> float:
    """Machine-speed proxy: ops/s of a fixed pure-Python loop shaped
    like the simulator hot path (list indexing, deque churn, integer
    arithmetic).  The regression gate compares *normalized* throughput
    (cycles/s divided by this), so a committed artifact from one
    machine still gates a run on a slower or faster one."""
    from collections import deque

    n = 2_000_000
    best = 0.0
    for _ in range(rounds):
        fifo = deque(range(64))
        arr = list(range(256))
        acc = 0
        cpu0 = time.process_time()
        for i in range(n):
            j = i & 255
            acc += arr[j]
            if not j:
                fifo.append(fifo.popleft())
        cpu = time.process_time() - cpu0
        best = max(best, n / cpu)
    return best


def run_once(config=None):
    config = config or make_3dm()
    network = config.build_network(shutdown_enabled=True)
    sim = Simulator(
        network,
        UniformRandomTraffic(
            num_nodes=config.num_nodes, flit_rate=RATE, seed=9,
            short_flit_fraction=0.5,
        ),
        warmup_cycles=WARMUP, measure_cycles=MEASURE, drain_cycles=10000,
    )
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    result = sim.run()
    cpu = time.process_time() - cpu0
    wall = time.perf_counter() - wall0
    return result, result.cycles / wall, result.cycles / cpu


def bench_fabric(rounds: int) -> float:
    """Best-of-N CPU-time cyc/s on a table-routed non-mesh fabric (the
    36-node ring, matching the mesh point's node count): tracks the
    substrate's routing-table/escape-VC overhead next to the XY mesh
    number.  Reported, not gated."""
    config = make_ring(num_nodes=36)
    best_cpu = 0.0
    reference = None
    for _ in range(rounds):
        result, _, cpu_rate = run_once(config)
        if reference is None:
            reference = result
        assert result.avg_latency == reference.avg_latency
        best_cpu = max(best_cpu, cpu_rate)
    return best_cpu


def bench(rounds: int):
    best_wall = best_cpu = 0.0
    reference = None
    for _ in range(rounds):
        result, wall_rate, cpu_rate = run_once()
        if reference is None:
            reference = result
        # Identical results round to round: the engine is deterministic.
        assert result.avg_latency == reference.avg_latency
        assert result.events.flit_hops == reference.events.flit_hops
        best_wall = max(best_wall, wall_rate)
        best_cpu = max(best_cpu, cpu_rate)
    return best_wall, best_cpu


def verify_bit_identity() -> bool:
    """Recompute the golden end-to-end digests for every committed case
    (uniform traffic on all six architectures + the two NUCA ends) and
    compare against the fixture — the same check the tier-1 golden test
    performs, run here so the artifact's ``bit_identical`` flag is
    backed by a measurement, not an assumption."""
    tests_dir = os.path.join(
        os.path.dirname(__file__), os.pardir, "tests"
    )
    sys.path.insert(0, tests_dir)
    try:
        import test_golden_e2e as golden
    finally:
        sys.path.remove(tests_dir)
    with open(golden.FIXTURE, encoding="utf-8") as handle:
        fixture = json.load(handle)
    ok = True
    for name, spec in sorted(golden.CASES.items()):
        from repro.experiments.runner import run_point_spec

        point = run_point_spec(spec, golden.SETTINGS)
        digest = golden.compute_digest(point)
        expected = fixture["cases"][name]["digest"]
        match = digest == expected
        ok = ok and match
        print(f"  {name:16s} {'ok' if match else 'DIGEST MISMATCH'}")
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_PR6.json")
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument(
        "--check-against", metavar="BASELINE_JSON", default=None,
        help="fail when off-path CPU-time rate regresses more than "
        "--tolerance below this committed artifact",
    )
    parser.add_argument("--tolerance", type=float, default=0.10)
    parser.add_argument(
        "--skip-identity", action="store_true",
        help="skip the six-architecture golden digest verification "
        "(report bit_identical: null)",
    )
    args = parser.parse_args(argv)

    if args.skip_identity:
        bit_identical = None
    else:
        print("verifying bit-identity against golden digests:")
        bit_identical = verify_bit_identity()

    best_wall, best_cpu = bench(args.rounds)
    ring_cpu = bench_fabric(args.rounds)
    calib = calibrate()
    payload = {
        "benchmark": "event-driven engine off-path throughput "
        f"(3DM uniform, rate={RATE}, {MEASURE} measured cycles)",
        "cycles_per_second": {
            "off_wall": round(best_wall, 1),
            "off_cpu": round(best_cpu, 1),
            "ring36_cpu": round(ring_cpu, 1),
        },
        "baseline_pr3_off": PR3_OFF_BASELINE,
        "baseline_seed_engine_same_machine_cpu": (
            SEED_ENGINE_SAME_MACHINE_CPU
        ),
        "speedup_vs_pr3_committed": round(best_wall / PR3_OFF_BASELINE, 3),
        "speedup_vs_seed_same_machine": round(
            best_cpu / SEED_ENGINE_SAME_MACHINE_CPU, 3
        ),
        "rounds": args.rounds,
        "calibration_ops_per_s": round(calib, 1),
        "bit_identical": bit_identical,
        "timing_note": "off_cpu (process_time) is the regression-gate "
        "metric; off_wall is comparable to BENCH_PR3.json's 'off' but "
        "carries machine/load noise. BENCH_PR3's 3946 was measured on "
        "a faster machine; the same-machine pre-SoA engine baseline "
        "(3223.5 cyc/s CPU) is the apples-to-apples denominator",
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))

    if bit_identical is False:
        print("FAIL: results are not bit-identical to the golden digests")
        return 1
    if args.check_against:
        with open(args.check_against, encoding="utf-8") as handle:
            committed = json.load(handle)
        baseline = committed["cycles_per_second"]["off_cpu"]
        baseline_calib = committed.get("calibration_ops_per_s")
        if baseline_calib:
            # Normalize both sides by machine speed so the gate holds
            # across different runners.
            measured_norm = best_cpu / calib
            baseline_norm = baseline / baseline_calib
            label = "normalized cycles/op"
        else:
            measured_norm = best_cpu
            baseline_norm = baseline
            label = "cyc/s (no calibration in baseline)"
        floor = baseline_norm * (1.0 - args.tolerance)
        if measured_norm < floor:
            print(
                f"FAIL: off-path throughput regressed: "
                f"{measured_norm:.6f} < {floor:.6f} {label} "
                f"(committed {baseline_norm:.6f} - {args.tolerance:.0%})"
            )
            return 1
        print(
            f"throughput gate ok: {measured_norm:.6f} >= {floor:.6f} "
            f"{label} (committed {baseline_norm:.6f} "
            f"- {args.tolerance:.0%})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
