"""Fig. 13 — short-flit census, shutdown power saving, temperature drop."""

from repro.experiments.report import format_table
from repro.experiments.thermal_exp import (
    fig13a_short_flit_fractions,
    fig13b_shutdown_savings,
    fig13c_temperature_reduction,
)
from repro.traffic.workloads import WORKLOADS


def test_fig13a_short_flit_percentage(benchmark, settings, save_report):
    fractions = benchmark.pedantic(
        lambda: fig13a_short_flit_fractions(settings), rounds=1, iterations=1
    )
    rows = [
        [name, f"{value * 100:.1f}%",
         f"{WORKLOADS[name].short_flit_fraction * 100:.1f}%"]
        for name, value in fractions.items()
    ]
    save_report(
        "fig13a_short_flits",
        format_table(["workload", "measured", "calibration target"], rows),
    )
    values = list(fractions.values())
    # Paper summary statistics: up to ~58%, ~40% average.
    assert 0.50 <= max(values) <= 0.65
    assert 0.30 <= sum(values) / len(values) <= 0.50


def test_fig13b_shutdown_power_saving(benchmark, settings, save_report):
    savings = benchmark.pedantic(
        lambda: fig13b_shutdown_savings(settings=settings),
        rounds=1, iterations=1,
    )
    analytic = fig13b_shutdown_savings(analytic=True)
    rows = [
        [
            arch,
            f"{by_s[0.25] * 100:.1f}%", f"{by_s[0.50] * 100:.1f}%",
            f"{analytic[arch][0.25] * 100:.1f}%",
            f"{analytic[arch][0.50] * 100:.1f}%",
        ]
        for arch, by_s in savings.items()
    ]
    save_report(
        "fig13b_shutdown_savings",
        "dynamic power saved by layer shutdown\n"
        "(simulated layer-resolved path vs analytic model at the nominal\n"
        " payload fraction; headers/control flits are short by\n"
        " construction, so simulated savings sit above the model)\n"
        + format_table(
            ["arch", "25% sim", "50% sim", "25% model", "50% model"], rows
        ),
    )
    for arch, by_s in savings.items():
        assert by_s[0.25] < by_s[0.50]
        # Simulated: measured short fraction (1 + 2s)/3 at nominal s.
        assert 0.25 <= by_s[0.50] <= 0.55, arch
        # Paper: up to ~36% at 50% short flits (analytic model).
        assert 0.25 <= analytic[arch][0.50] <= 0.37, arch
        assert analytic[arch][0.25] < analytic[arch][0.50]


def test_fig13c_temperature_reduction(benchmark, settings, save_report):
    drops = benchmark.pedantic(
        lambda: fig13c_temperature_reduction(settings), rounds=1, iterations=1
    )
    rows = [[f"{rate:g}", f"{drop:.3f}"] for rate, drop in drops.items()]
    save_report(
        "fig13c_temperature_reduction",
        "3DM average temperature drop (K), 50% vs 0% short flits\n"
        + format_table(["injection rate", "delta T (K)"], rows),
    )
    values = list(drops.values())
    # Fig. 13c shape: positive drop, growing with injection rate.
    assert all(v > 0 for v in values)
    assert values == sorted(values)
