"""Fig. 9 — per-flit-hop dynamic energy breakdown per architecture."""

from repro.experiments.breakdown import fig9_energy_breakdown
from repro.experiments.report import dict_table


def test_fig9_flit_energy_breakdown(benchmark, save_report):
    data = benchmark.pedantic(fig9_energy_breakdown, rounds=1, iterations=1)
    save_report(
        "fig09_energy_breakdown",
        "per-flit-hop energy (pJ)\n" + dict_table(data, row_label="arch"),
    )

    totals = {arch: sum(bd.values()) for arch, bd in data.items()}
    # Fig. 9 shape: 3DM lowest, 3DB highest.
    assert min(totals, key=totals.get) == "3DM"
    assert max(totals, key=totals.get) == "3DB"
    # Paper: ~35% energy reduction for 3DM vs 2DB (we land in-band).
    saving = 1 - totals["3DM"] / totals["2DB"]
    assert 0.30 <= saving <= 0.55
    # Largest single 3DM saving comes from the link (Sec. 3.4.2).
    deltas = {k: data["2DB"][k] - data["3DM"][k] for k in data["2DB"]}
    assert max(deltas, key=deltas.get) == "link"
