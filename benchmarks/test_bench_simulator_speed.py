"""Simulator performance benchmark (cycles/second of host time).

The only benchmark here measured over multiple rounds: how fast the
cycle-accurate model runs.  Useful for tracking performance regressions
in the hot loop (router step / allocation) across changes.

Low-load points are where the active-set scheduler pays: at 0.05
flits/node/cycle most routers are quiescent most cycles and only the
woken subset is stepped.  The ``scheduler_off`` variants benchmark the
full-iteration debug mode at the same load for an apples-to-apples
comparison (both modes are bit-identical in results).
"""

import pytest

from repro.core.arch import make_2db, make_3dme
from repro.noc.simulator import Simulator
from repro.traffic.synthetic import UniformRandomTraffic

CYCLES = 1500
RATE = 0.2
LOW_RATE = 0.05


def _run_once(config, rate=RATE, active_scheduling=True):
    network = config.build_network()
    network.active_scheduling = active_scheduling
    sim = Simulator(
        network,
        UniformRandomTraffic(num_nodes=config.num_nodes, flit_rate=rate, seed=3),
        warmup_cycles=0,
        measure_cycles=CYCLES,
        drain_cycles=0,
    )
    return sim.run()


def test_simulation_speed_2db(benchmark):
    result = benchmark.pedantic(
        lambda: _run_once(make_2db()), rounds=3, iterations=1, warmup_rounds=1
    )
    assert result.cycles >= CYCLES


def test_simulation_speed_3dme(benchmark):
    """The 9-port express router is the most expensive to simulate."""
    result = benchmark.pedantic(
        lambda: _run_once(make_3dme()), rounds=3, iterations=1, warmup_rounds=1
    )
    assert result.cycles >= CYCLES


@pytest.mark.parametrize("scheduler", ["active_set", "full_iteration"])
def test_simulation_speed_2db_low_load(benchmark, scheduler):
    result = benchmark.pedantic(
        lambda: _run_once(
            make_2db(), rate=LOW_RATE,
            active_scheduling=scheduler == "active_set",
        ),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    assert result.cycles >= CYCLES


@pytest.mark.parametrize("scheduler", ["active_set", "full_iteration"])
def test_simulation_speed_3dme_low_load(benchmark, scheduler):
    result = benchmark.pedantic(
        lambda: _run_once(
            make_3dme(), rate=LOW_RATE,
            active_scheduling=scheduler == "active_set",
        ),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    assert result.cycles >= CYCLES
