"""Simulator performance benchmark (cycles/second of host time).

The only benchmark here measured over multiple rounds: how fast the
cycle-accurate model runs.  Useful for tracking performance regressions
in the hot loop (router step / allocation) across changes.
"""

from repro.core.arch import make_2db, make_3dme
from repro.noc.simulator import Simulator
from repro.traffic.synthetic import UniformRandomTraffic

CYCLES = 1500
RATE = 0.2


def _run_once(config):
    network = config.build_network()
    sim = Simulator(
        network,
        UniformRandomTraffic(num_nodes=config.num_nodes, flit_rate=RATE, seed=3),
        warmup_cycles=0,
        measure_cycles=CYCLES,
        drain_cycles=0,
    )
    return sim.run()


def test_simulation_speed_2db(benchmark):
    result = benchmark.pedantic(
        lambda: _run_once(make_2db()), rounds=3, iterations=1, warmup_rounds=1
    )
    assert result.cycles >= CYCLES


def test_simulation_speed_3dme(benchmark):
    """The 9-port express router is the most expensive to simulate."""
    result = benchmark.pedantic(
        lambda: _run_once(make_3dme()), rounds=3, iterations=1, warmup_rounds=1
    )
    assert result.cycles >= CYCLES