"""Fig. 12 — power results: UR/NUCA sweeps, MP traces, normalised PDP."""

from repro.experiments.power import (
    fig12a_uniform_power,
    fig12b_nuca_power,
    fig12c_trace_power,
    fig12d_pdp,
)
from repro.experiments.report import (
    format_table,
    normalized_table,
    sweep_table,
)


def test_fig12a_uniform_power(benchmark, settings, save_report):
    sweep = benchmark.pedantic(
        lambda: fig12a_uniform_power(settings), rounds=1, iterations=1
    )
    save_report(
        "fig12a_power_uniform",
        "average network power (W) vs injection rate, 0% short flits\n"
        + sweep_table(sweep, "total_power_w"),
    )
    top = len(settings.uniform_rates) - 1
    power = {arch: series[top][1].total_power_w for arch, series in sweep.items()}
    # Paper: 3DM saves ~22%/15% vs 2DB/3DB; 3DM-E saves ~42%/37%.
    assert power["3DM"] < power["2DB"]
    assert power["3DM"] < power["3DB"]
    assert power["3DM-E"] < power["2DB"]
    assert 1 - power["3DM-E"] / power["2DB"] > 0.2


def test_fig12b_nuca_power(benchmark, settings, save_report):
    sweep = benchmark.pedantic(
        lambda: fig12b_nuca_power(settings), rounds=1, iterations=1
    )
    save_report(
        "fig12b_power_nuca",
        "average network power (W) vs request rate (NUCA-UR)\n"
        + sweep_table(sweep, "total_power_w"),
    )
    top = len(settings.nuca_rates) - 1
    power = {arch: series[top][1].total_power_w for arch, series in sweep.items()}
    assert power["3DM"] < power["2DB"]
    # 3DB's inflated NUCA hop count costs it energy (Sec. 4.2.2).
    assert power["3DB"] > power["3DM"]


def test_fig12c_mp_trace_power(benchmark, settings, save_report):
    results = benchmark.pedantic(
        lambda: fig12c_trace_power(settings), rounds=1, iterations=1
    )
    save_report(
        "fig12c_power_traces",
        "MP-trace power normalised to 2DB (shutdown on for 3DM/3DM-E)\n"
        + normalized_table(results, metric="total_power_w"),
    )
    archs = next(iter(results.values())).keys()
    mean = {
        arch: sum(
            r[arch].total_power_w / r["2DB"].total_power_w for r in results.values()
        )
        / len(results)
        for arch in archs
    }
    # Paper: ~67% saving vs 2DB with traces (structure + shutdown); we
    # require a substantial saving with the right ordering.
    assert mean["3DM"] < 0.75
    assert mean["3DM-E"] < 0.75
    assert mean["3DB"] > mean["3DM"]


def test_fig12d_pdp(benchmark, settings, save_report):
    pdp = benchmark.pedantic(
        lambda: fig12d_pdp(settings), rounds=1, iterations=1
    )
    rates = [rate for rate, _ in next(iter(pdp.values()))]
    rows = []
    for i, rate in enumerate(rates):
        rows.append([f"{rate:g}"] + [f"{pdp[arch][i][1]:.3f}" for arch in pdp])
    save_report(
        "fig12d_pdp",
        "power-delay product normalised to 2DB (UR)\n"
        + format_table(["rate"] + list(pdp), rows),
    )
    # Fig. 12d: 3DM-E best, 2DB worst at every rate.
    for i in range(len(rates)):
        values = {arch: series[i][1] for arch, series in pdp.items()}
        assert min(values, key=values.get) == "3DM-E"
        assert max(values, key=values.get) == "2DB"
