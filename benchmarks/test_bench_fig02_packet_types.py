"""Fig. 2 — packet-type (control vs data) distribution per workload."""

from repro.experiments.breakdown import fig2_packet_types
from repro.experiments.report import dict_table


def test_fig2_packet_types(benchmark, settings, save_report):
    data = benchmark.pedantic(
        lambda: fig2_packet_types(settings), rounds=1, iterations=1
    )
    save_report("fig02_packet_types", dict_table(data, row_label="workload"))
    # Fig. 2 shape: a significant share of NUCA traffic is short
    # address/coherence control packets.
    for workload, split in data.items():
        assert 0.3 <= split["ctrl"] <= 0.8, workload
