"""Setuptools shim: lets legacy (non-PEP-517) editable installs work on
environments without the ``wheel`` package."""

from setuptools import setup

setup()
